"""Unit tests for Relation / Database and bit accounting."""

from __future__ import annotations

import pytest

from repro.data.database import (
    Database,
    DataError,
    Relation,
    as_mapping,
    bits_per_value,
)


def rel(name="R", rows=((1, 2), (2, 1)), n=4, arity=None):
    return Relation.from_tuples(name, rows, domain_size=n, arity=arity)


class TestBitsPerValue:
    @pytest.mark.parametrize(
        "n,bits", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_values(self, n, bits):
        assert bits_per_value(n) == bits

    def test_invalid(self):
        with pytest.raises(DataError):
            bits_per_value(0)


class TestRelation:
    def test_deduplicates_and_sorts(self):
        relation = rel(rows=[(2, 1), (1, 2), (2, 1)])
        assert relation.tuples == ((1, 2), (2, 1))
        assert len(relation) == 2

    def test_contains(self):
        relation = rel()
        assert (1, 2) in relation
        assert (3, 3) not in relation

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DataError, match="arity"):
            Relation("R", 2, ((1,),), 4)

    def test_domain_violation_rejected(self):
        with pytest.raises(DataError, match="domain"):
            rel(rows=[(1, 9)], n=4)
        with pytest.raises(DataError, match="domain"):
            rel(rows=[(0, 1)], n=4)

    def test_empty_needs_explicit_arity(self):
        with pytest.raises(DataError, match="infer arity"):
            Relation.from_tuples("R", [], domain_size=4)
        empty = Relation.from_tuples("R", [], domain_size=4, arity=2)
        assert len(empty) == 0

    def test_size_bits(self):
        relation = rel(rows=[(1, 2), (3, 4)], n=4)  # 2 bits/value
        assert relation.tuple_bits == 4
        assert relation.size_bits == 8

    def test_is_matching(self):
        good = Relation.from_tuples(
            "M", [(1, 2), (2, 3), (3, 1)], domain_size=3
        )
        assert good.is_matching()
        short = Relation.from_tuples("M", [(1, 2)], domain_size=3)
        assert not short.is_matching()
        repeated = Relation.from_tuples(
            "M", [(1, 2), (2, 2), (3, 1)], domain_size=3
        )
        assert not repeated.is_matching()

    def test_project(self):
        relation = rel(rows=[(1, 2), (3, 4)], n=4)
        assert relation.project([1]) == ((2,), (4,))
        assert relation.project([1, 0]) == ((2, 1), (4, 3))


class TestDatabase:
    def test_from_relations_rescales_domain(self):
        database = Database.from_relations(
            [rel("R", [(1, 2)], n=2), rel("S", [(3, 4)], n=4)]
        )
        assert database.domain_size == 4
        assert database["R"].domain_size == 4

    def test_name_key_consistency_checked(self):
        with pytest.raises(DataError, match="relation key"):
            Database(relations={"X": rel("R")}, domain_size=4)

    def test_domain_consistency_checked(self):
        with pytest.raises(DataError, match="domain"):
            Database(relations={"R": rel("R", n=4)}, domain_size=8)

    def test_totals(self):
        database = Database.from_relations(
            [rel("R", [(1, 2), (2, 1)], n=4), rel("S", [(1, 1)], n=4)]
        )
        assert database.total_tuples == 3
        assert database.total_bits == 3 * 4

    def test_restrict(self):
        database = Database.from_relations(
            [rel("R"), rel("S", [(1, 1)])]
        )
        restricted = database.restrict(["R"])
        assert set(restricted.relations) == {"R"}
        with pytest.raises(DataError, match="unknown relations"):
            database.restrict(["Z"])

    def test_with_relation_replaces(self):
        database = Database.from_relations([rel("R")])
        updated = database.with_relation(rel("R", [(3, 3)], n=4))
        assert updated["R"].tuples == ((3, 3),)
        assert database["R"].tuples != updated["R"].tuples

    def test_with_relation_domain_checked(self):
        database = Database.from_relations([rel("R", n=4)])
        with pytest.raises(DataError, match="domain"):
            database.with_relation(rel("S", [(1, 1)], n=8))

    def test_iteration_and_membership(self):
        database = Database.from_relations([rel("R"), rel("S", [(1, 1)])])
        assert "R" in database
        assert "Z" not in database
        assert {r.name for r in database} == {"R", "S"}

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="at least one"):
            Database.from_relations([])

    def test_as_mapping(self):
        database = Database.from_relations([rel("R")])
        mapping = as_mapping(database)
        assert mapping["R"] == ((1, 2), (2, 1))
