"""Unit tests for the experiment input generators."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.data.database import DataError
from repro.data.generators import (
    dense_graph,
    layered_path_graph,
    skewed_database,
    skewed_relation,
    witness_database,
)


class TestSkewedDatabase:
    def test_every_relation_skewed_on_first_position(self):
        from repro.core.query import parse_query

        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = skewed_database(query, n=100, rng=1, heavy_fraction=0.5)
        for name in ("S1", "S2"):
            relation = database[name]
            heavy = sum(1 for row in relation.tuples if row[0] == 1)
            assert heavy >= 30  # dedup may eat a few
            assert heavy >= 3 * max(
                sum(1 for row in relation.tuples if row[0] == value)
                for value in range(2, 101)
            )
            assert relation.domain_size == 100

    def test_fraction_validated(self):
        from repro.core.query import parse_query

        query = parse_query("q(x,y) = S(x, y)")
        with pytest.raises(DataError):
            skewed_database(query, n=10, heavy_fraction=-0.1)


class TestSkewedRelation:
    def test_heavy_value_dominates(self, rng):
        relation = skewed_relation("S", 100, rng, heavy_fraction=0.5)
        heavy = sum(1 for row in relation.tuples if row[0] == 1)
        assert heavy >= 40  # dedup may eat a few
        assert not relation.is_matching()

    def test_fraction_validated(self, rng):
        with pytest.raises(DataError):
            skewed_relation("S", 10, rng, heavy_fraction=1.5)


class TestWitnessDatabase:
    def test_shapes(self):
        database = witness_database(n=100, rng=0)
        assert set(database.relations) == {"R", "S1", "S2", "S3", "T"}
        assert len(database["R"]) == math.ceil(math.sqrt(100))
        assert len(database["T"]) == 10
        for name in ("S1", "S2", "S3"):
            assert database[name].is_matching()

    def test_expected_answer_is_small(self):
        """E[|q|] = 1: over seeds, answers should be rare."""
        from repro.algorithms.localjoin import evaluate_query
        from repro.algorithms.witness import WITNESS_CHAIN

        total = 0
        trials = 20
        for seed in range(trials):
            database = witness_database(n=64, rng=seed)
            r = {row[0] for row in database["R"]}
            t = {row[0] for row in database["T"]}
            chain = evaluate_query(
                WITNESS_CHAIN,
                {
                    name: database[name].tuples
                    for name in ("S1", "S2", "S3")
                },
            )
            total += sum(
                1 for row in chain if row[0] in r and row[-1] in t
            )
        assert total / trials < 4


class TestLayeredPathGraph:
    def test_component_structure(self):
        graph = layered_path_graph(num_layers=4, layer_size=10, rng=0)
        assert graph.num_vertices == 50
        assert len(graph.edges) == 40
        # Every component is a path with one vertex per layer.
        assert graph.num_components == 10
        sizes = {}
        for label in graph.labels.values():
            sizes[label] = sizes.get(label, 0) + 1
        assert set(sizes.values()) == {5}

    def test_labels_match_networkx(self):
        graph = layered_path_graph(num_layers=3, layer_size=8, rng=2)
        nx_graph = nx.Graph(graph.edges)
        nx_graph.add_nodes_from(range(1, graph.num_vertices + 1))
        for component in nx.connected_components(nx_graph):
            expected = min(component)
            assert all(
                graph.labels[v] == expected for v in component
            )

    def test_edge_relation_symmetric(self):
        graph = layered_path_graph(num_layers=2, layer_size=4, rng=1)
        relation = graph.edge_relation()
        rows = set(relation.tuples)
        assert all((v, u) in rows for u, v in rows)

    def test_validation(self):
        with pytest.raises(DataError):
            layered_path_graph(0, 5)
        with pytest.raises(DataError):
            layered_path_graph(3, 0)


class TestDenseGraph:
    def test_edge_count_exact(self):
        graph = dense_graph(20, 100, rng=0)
        assert len(graph.edges) == 100
        assert all(u < v for u, v in graph.edges)

    def test_labels_match_networkx(self):
        graph = dense_graph(30, 60, rng=3)
        nx_graph = nx.Graph(graph.edges)
        nx_graph.add_nodes_from(range(1, 31))
        for component in nx.connected_components(nx_graph):
            expected = min(component)
            assert all(graph.labels[v] == expected for v in component)

    def test_too_many_edges_rejected(self):
        with pytest.raises(DataError, match="maximum"):
            dense_graph(4, 10, rng=0)

    def test_too_few_vertices_rejected(self):
        with pytest.raises(DataError):
            dense_graph(1, 0, rng=0)
