"""Unit tests for the versioned mutating database."""

from __future__ import annotations

import pytest

from repro.backend import numpy_available
from repro.core.query import parse_query
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import DataError
from repro.data.matching import matching_database
from repro.data.versioned import DatabaseDelta, VersionedDatabase

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

VOCAB = parse_query("S1(x,y), S2(y,z)")


def _versioned(backend="pure", n=20):
    return VersionedDatabase(
        matching_database(VOCAB, n=n, rng=1), backend=backend
    )


class TestConstruction:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wraps_row_database(self, backend):
        versioned = _versioned(backend)
        assert versioned.version == 0
        assert versioned.backend == backend
        assert isinstance(versioned.snapshot, ColumnarDatabase)
        assert set(r.name for r in versioned) == {"S1", "S2"}
        assert len(versioned) == 2
        assert "S1" in versioned

    def test_wraps_columnar_mapping(self):
        relation = ColumnarRelation.from_rows(
            "R", [(1, 2), (2, 3)], domain_size=5, backend="pure"
        )
        versioned = VersionedDatabase({"R": relation}, backend="pure")
        assert versioned.domain_size == 5
        assert versioned.total_bits == relation.size_bits


class TestDeltas:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_bumps_version_and_contents(self, backend):
        versioned = _versioned(backend)
        old_snapshot = versioned.snapshot
        rows_before = set(old_snapshot["S1"].rows())
        version = versioned.update(inserts={"S1": [(1, 2)]})
        assert version == 1 and versioned.version == 1
        assert set(versioned["S1"].rows()) == rows_before | {(1, 2)}
        # Snapshots are immutable values: the old one is untouched.
        assert set(old_snapshot["S1"].rows()) == rows_before

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_is_idempotent(self, backend):
        versioned = _versioned(backend)
        row = next(iter(versioned["S1"].rows()))
        versioned.update(deletes={"S1": [row]})
        assert row not in set(versioned["S1"].rows())
        versioned.update(deletes={"S1": [row]})  # absent: no error
        assert versioned.version == 2

    def test_insert_grows_domain_and_bits(self):
        versioned = _versioned()
        bits_before = versioned.total_bits
        n = versioned.domain_size
        versioned.update(inserts={"S1": [(n + 100, 1)]})
        assert versioned.domain_size == n + 100
        assert versioned.total_bits != bits_before

    def test_new_relation_via_insert(self):
        versioned = _versioned()
        versioned.update(inserts={"R": [(1, 2, 3)]})
        assert versioned["R"].arity == 3

    def test_delete_from_unknown_relation_errors(self):
        versioned = _versioned()
        with pytest.raises(DataError, match="unknown"):
            versioned.update(deletes={"nope": [(1,)]})

    def test_empty_delta_still_bumps_version(self):
        versioned = _versioned()
        delta = DatabaseDelta.of()
        assert delta.is_empty
        assert versioned.apply_delta(delta) == 1

    def test_ragged_insert_rejected(self):
        versioned = _versioned()
        with pytest.raises(DataError):
            versioned.update(inserts={"S1": [(1, 2, 3)]})

    def test_inserts_deduplicate_against_existing(self):
        versioned = _versioned()
        row = next(iter(versioned["S1"].rows()))
        size = len(versioned["S1"])
        versioned.update(inserts={"S1": [row]})
        assert len(versioned["S1"]) == size


class TestDeltaEdgeSemantics:
    """The pinned edge cases of DatabaseDelta (see its docstring)."""

    def test_delete_nonexistent_row_is_noop(self):
        versioned = _versioned()
        rows = set(versioned["S1"].rows())
        versioned.update(deletes={"S1": [(9999, 9999)]})
        assert set(versioned["S1"].rows()) == rows
        record = versioned.last_record
        assert record.is_noop
        assert record.removed == {}

    def test_duplicate_inserts_collapse(self):
        versioned = _versioned()
        size = len(versioned["S1"])
        versioned.update(inserts={"S1": [(500, 501), (500, 501)]})
        assert len(versioned["S1"]) == size + 1
        assert versioned.last_record.added["S1"] == frozenset(
            {(500, 501)}
        )

    def test_insert_and_delete_same_row_keeps_it(self):
        # Insert wins: deletes filter the old snapshot, then inserts
        # are added on top.
        versioned = _versioned()
        versioned.update(
            inserts={"S1": [(500, 501)]}, deletes={"S1": [(500, 501)]}
        )
        assert (500, 501) in set(versioned["S1"].rows())
        record = versioned.last_record
        assert record.added["S1"] == frozenset({(500, 501)})
        assert record.removed == {}

    def test_delete_then_reinsert_existing_row_is_noop(self):
        versioned = _versioned()
        row = next(iter(versioned["S1"].rows()))
        versioned.update(
            inserts={"S1": [row]}, deletes={"S1": [row]}
        )
        assert row in set(versioned["S1"].rows())
        assert versioned.last_record.is_noop


class TestProvenance:
    """DeltaRecord history and delta composition."""

    def test_records_effective_delta_only(self):
        versioned = _versioned()
        existing = next(iter(versioned["S1"].rows()))
        # Fresh rows within the current domain: no bit-width change.
        absent = (
            (a, b)
            for a in range(1, versioned.domain_size + 1)
            for b in range(1, versioned.domain_size + 1)
            if (a, b) not in set(versioned["S1"].rows())
        )
        fresh, ghost = next(absent), next(absent)
        versioned.update(
            inserts={"S1": [existing, fresh]},
            deletes={"S1": [ghost]},
        )
        record = versioned.last_record
        assert record.old_version == 0 and record.new_version == 1
        assert record.added == {"S1": frozenset({fresh})}
        assert record.removed == {}
        assert not record.bits_changed

    def test_delta_between_composes_insert_then_delete(self):
        versioned = _versioned()
        versioned.update(inserts={"S1": [(600, 601)]})
        versioned.update(deletes={"S1": [(600, 601)]})
        composed = versioned.delta_between(0, 2)
        assert composed.is_noop

    def test_delta_between_composes_delete_then_reinsert(self):
        versioned = _versioned()
        row = next(iter(versioned["S1"].rows()))
        versioned.update(deletes={"S1": [row]})
        versioned.update(inserts={"S1": [row]})
        composed = versioned.delta_between(0, 2)
        assert composed.is_noop

    def test_delta_between_same_version_is_empty(self):
        versioned = _versioned()
        versioned.update(inserts={"S1": [(600, 601)]})
        composed = versioned.delta_between(1, 1)
        assert composed is not None and composed.is_noop

    def test_delta_between_gap_returns_none(self):
        from repro.data.versioned import DELTA_HISTORY_LIMIT

        versioned = _versioned()
        for step in range(DELTA_HISTORY_LIMIT + 2):
            versioned.update(inserts={"S1": [(700 + step, 1)]})
        assert versioned.delta_between(0, versioned.version) is None
        # Recent versions are still covered.
        recent = versioned.delta_between(
            versioned.version - 2, versioned.version
        )
        assert recent is not None and recent.change_count() == 2

    def test_bits_changed_on_domain_growth(self):
        versioned = _versioned()
        n = versioned.domain_size
        versioned.update(inserts={"S1": [(n + 100, 1)]})
        assert versioned.last_record.bits_changed

    def test_bits_changed_on_new_relation(self):
        versioned = _versioned()
        versioned.update(inserts={"R": [(1, 2, 3)]})
        assert versioned.last_record.bits_changed
