"""Unit tests for the versioned mutating database."""

from __future__ import annotations

import pytest

from repro.backend import numpy_available
from repro.core.query import parse_query
from repro.data.columnar import ColumnarDatabase, ColumnarRelation
from repro.data.database import DataError
from repro.data.matching import matching_database
from repro.data.versioned import DatabaseDelta, VersionedDatabase

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

VOCAB = parse_query("S1(x,y), S2(y,z)")


def _versioned(backend="pure", n=20):
    return VersionedDatabase(
        matching_database(VOCAB, n=n, rng=1), backend=backend
    )


class TestConstruction:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wraps_row_database(self, backend):
        versioned = _versioned(backend)
        assert versioned.version == 0
        assert versioned.backend == backend
        assert isinstance(versioned.snapshot, ColumnarDatabase)
        assert set(r.name for r in versioned) == {"S1", "S2"}
        assert len(versioned) == 2
        assert "S1" in versioned

    def test_wraps_columnar_mapping(self):
        relation = ColumnarRelation.from_rows(
            "R", [(1, 2), (2, 3)], domain_size=5, backend="pure"
        )
        versioned = VersionedDatabase({"R": relation}, backend="pure")
        assert versioned.domain_size == 5
        assert versioned.total_bits == relation.size_bits


class TestDeltas:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_bumps_version_and_contents(self, backend):
        versioned = _versioned(backend)
        old_snapshot = versioned.snapshot
        rows_before = set(old_snapshot["S1"].rows())
        version = versioned.update(inserts={"S1": [(1, 2)]})
        assert version == 1 and versioned.version == 1
        assert set(versioned["S1"].rows()) == rows_before | {(1, 2)}
        # Snapshots are immutable values: the old one is untouched.
        assert set(old_snapshot["S1"].rows()) == rows_before

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delete_is_idempotent(self, backend):
        versioned = _versioned(backend)
        row = next(iter(versioned["S1"].rows()))
        versioned.update(deletes={"S1": [row]})
        assert row not in set(versioned["S1"].rows())
        versioned.update(deletes={"S1": [row]})  # absent: no error
        assert versioned.version == 2

    def test_insert_grows_domain_and_bits(self):
        versioned = _versioned()
        bits_before = versioned.total_bits
        n = versioned.domain_size
        versioned.update(inserts={"S1": [(n + 100, 1)]})
        assert versioned.domain_size == n + 100
        assert versioned.total_bits != bits_before

    def test_new_relation_via_insert(self):
        versioned = _versioned()
        versioned.update(inserts={"R": [(1, 2, 3)]})
        assert versioned["R"].arity == 3

    def test_delete_from_unknown_relation_errors(self):
        versioned = _versioned()
        with pytest.raises(DataError, match="unknown"):
            versioned.update(deletes={"nope": [(1,)]})

    def test_empty_delta_still_bumps_version(self):
        versioned = _versioned()
        delta = DatabaseDelta.of()
        assert delta.is_empty
        assert versioned.apply_delta(delta) == 1

    def test_ragged_insert_rejected(self):
        versioned = _versioned()
        with pytest.raises(DataError):
            versioned.update(inserts={"S1": [(1, 2, 3)]})

    def test_inserts_deduplicate_against_existing(self):
        versioned = _versioned()
        row = next(iter(versioned["S1"].rows()))
        size = len(versioned["S1"])
        versioned.update(inserts={"S1": [row]})
        assert len(versioned["S1"]) == size
