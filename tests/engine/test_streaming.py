"""Streaming data layer: blocks, builders, lazy pools, chunk edges."""

from __future__ import annotations

import dataclasses

import pytest

numpy = pytest.importorskip("numpy")

from repro.algorithms.hypercube import compile_hypercube
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.engine.executor import execute_plan, plan_simulator
from repro.engine.streaming import (
    CHUNK_ROWS_ENV,
    DEFAULT_SHARD_BYTES,
    SHARD_BYTES_ENV,
    LazyContribution,
    PoolBuilder,
    bin_block,
    iter_blocks,
    materialize_shard,
    plan_worker_shards,
    resolve_chunk_rows,
    resolve_shard_bytes,
    route_block_counts,
)
from repro.mpc.simulator import (
    CapacityExceeded,
    ColumnPool,
    ProtocolError,
)
from repro.serve.service import QueryService


class TestResolveChunkRows:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ROWS_ENV, "7")
        assert resolve_chunk_rows(64) == 64

    def test_env_is_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ROWS_ENV, "128")
        assert resolve_chunk_rows(None) == 128

    @pytest.mark.parametrize("raw", ["", "none", "NONE", "inf", "  "])
    def test_monolithic_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(CHUNK_ROWS_ENV, raw)
        assert resolve_chunk_rows(None) is None

    @pytest.mark.parametrize("value", [0, -1])
    def test_non_positive_means_monolithic(self, value):
        assert resolve_chunk_rows(value) is None

    def test_unset_env_means_monolithic(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ROWS_ENV, raising=False)
        assert resolve_chunk_rows(None) is None

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ROWS_ENV, "lots")
        with pytest.raises(ValueError):
            resolve_chunk_rows(None)


class TestResolveShardBytes:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SHARD_BYTES_ENV, raising=False)
        assert resolve_shard_bytes(None) == DEFAULT_SHARD_BYTES

    def test_env_and_argument(self, monkeypatch):
        monkeypatch.setenv(SHARD_BYTES_ENV, "1024")
        assert resolve_shard_bytes(None) == 1024
        assert resolve_shard_bytes(2048) == 2048

    def test_non_positive_falls_back_to_default(self):
        assert resolve_shard_bytes(0) == DEFAULT_SHARD_BYTES
        assert resolve_shard_bytes(-5) == DEFAULT_SHARD_BYTES


class TestIterBlocks:
    def test_empty_relation_yields_no_blocks(self):
        assert list(iter_blocks(0, 4)) == []

    def test_final_block_may_be_short(self):
        assert list(iter_blocks(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_chunk_one(self):
        assert list(iter_blocks(3, 1)) == [(0, 1), (1, 2), (2, 3)]

    def test_chunk_covers_relation_in_one_block(self):
        assert list(iter_blocks(3, 1000)) == [(0, 3)]

    def test_chunk_below_one_raises(self):
        with pytest.raises(ValueError):
            list(iter_blocks(5, 0))


def _block_pool(rows, destinations, p):
    """A worker-grouped block pool from explicit (row, dest) pairs."""
    columns = tuple(
        numpy.asarray(column, dtype=numpy.int64)
        for column in zip(*rows)
    ) if rows else (numpy.zeros(0, dtype=numpy.int64),) * 2
    dest = numpy.asarray(destinations, dtype=numpy.int64)
    return bin_block(columns, dest, None, p)


class TestPoolBuilder:
    P = 4

    def test_empty_finalize_preserves_arity_and_workers(self):
        builder = PoolBuilder(self.P)
        builder.append(_block_pool([], [], self.P))
        pool = builder.finalize()
        assert len(pool) == 0
        assert pool.num_workers == self.P
        assert len(pool.columns) == 2

    def test_no_blocks_finalizes_to_zero_arity_empty(self):
        pool = PoolBuilder(self.P).finalize()
        assert len(pool) == 0
        assert pool.offsets.tolist() == [0] * (self.P + 1)

    def test_single_block_passes_through(self):
        block = _block_pool([(1, 2), (3, 4)], [2, 0], self.P)
        builder = PoolBuilder(self.P)
        builder.append(block)
        pool = builder.finalize()
        assert pool.source_sorted
        assert numpy.array_equal(pool.columns[0], block.columns[0])
        assert numpy.array_equal(pool.offsets, block.offsets)

    def test_merge_equals_monolithic_grouping(self):
        rows = [(i, 10 + i) for i in range(12)]
        destinations = [i % self.P for i in range(12)]
        monolithic = _block_pool(rows, destinations, self.P)
        builder = PoolBuilder(self.P)
        for start in range(0, 12, 5):
            builder.append(
                _block_pool(
                    rows[start : start + 5],
                    destinations[start : start + 5],
                    self.P,
                )
            )
        merged = builder.finalize()
        assert numpy.array_equal(merged.offsets, monolithic.offsets)
        for merged_col, mono_col in zip(merged.columns, monolithic.columns):
            assert numpy.array_equal(merged_col, mono_col)
        # one stream, source-ordered blocks: sortedness survives
        assert merged.source_sorted

    def test_second_stream_clears_source_sorted(self):
        builder = PoolBuilder(self.P)
        builder.append(_block_pool([(1, 1)], [0], self.P), stream="a")
        builder.append(_block_pool([(2, 2)], [1], self.P), stream="b")
        assert not builder.finalize().source_sorted

    def test_unsorted_block_clears_source_sorted(self):
        builder = PoolBuilder(self.P)
        builder.append(
            _block_pool([(1, 1)], [0], self.P), sorted_block=False
        )
        assert not builder.finalize().source_sorted

    def test_worker_count_mismatch_raises(self):
        builder = PoolBuilder(self.P)
        with pytest.raises(ValueError):
            builder.append(_block_pool([(1, 1)], [0], self.P + 1))


class TestBinBlock:
    P = 5

    def _triple(self):
        columns = (
            numpy.arange(8, dtype=numpy.int64),
            numpy.arange(8, 16, dtype=numpy.int64),
        )
        destinations = numpy.array(
            [4, 0, 2, 0, 3, 2, 1, 4], dtype=numpy.int64
        )
        return columns, destinations

    def test_full_range_groups_stably(self):
        columns, destinations = self._triple()
        pool = bin_block(columns, destinations, None, self.P)
        assert len(pool) == 8
        # worker 0 gets source rows 1 and 3 in source order
        fragment = pool.worker_slice(0)
        assert fragment[0].tolist() == [1, 3]
        fragment = pool.worker_slice(4)
        assert fragment[0].tolist() == [0, 7]

    def test_shard_restriction_drops_outside_rows(self):
        columns, destinations = self._triple()
        pool = bin_block(columns, destinations, None, self.P, lo=2, hi=4)
        assert pool.num_workers == 2
        assert pool.worker_slice(0)[0].tolist() == [2, 5]  # worker 2
        assert pool.worker_slice(1)[0].tolist() == [4]  # worker 3

    def test_single_worker_shard_skips_the_sort(self):
        columns, destinations = self._triple()
        pool = bin_block(columns, destinations, None, self.P, lo=4, hi=5)
        assert pool.num_workers == 1
        assert pool.worker_slice(0)[0].tolist() == [0, 7]

    def test_row_indices_gather_filtered_sources(self):
        columns = (numpy.arange(10, dtype=numpy.int64),)
        destinations = numpy.array([1, 0, 1], dtype=numpy.int64)
        row_indices = numpy.array([2, 5, 9], dtype=numpy.int64)
        pool = bin_block(columns, destinations, row_indices, 2)
        assert pool.worker_slice(0)[0].tolist() == [5]
        assert pool.worker_slice(1)[0].tolist() == [2, 9]

    def test_shards_concatenate_to_full_pool(self):
        columns, destinations = self._triple()
        full = bin_block(columns, destinations, None, self.P)
        parts = [
            bin_block(columns, destinations, None, self.P, lo, hi)
            for lo, hi in ((0, 2), (2, 4), (4, 5))
        ]
        assert sum(len(part) for part in parts) == len(full)
        rebuilt = numpy.concatenate(
            [part.columns[0] for part in parts]
        )
        assert numpy.array_equal(rebuilt, full.columns[0])


class TestPlanWorkerShards:
    def test_budget_groups_contiguously(self):
        byte_counts = numpy.array([10, 10, 10, 10], dtype=numpy.int64)
        assert plan_worker_shards(byte_counts, 4, 20) == [(0, 2), (2, 4)]

    def test_oversized_worker_gets_its_own_shard(self):
        byte_counts = numpy.array([100, 1, 1], dtype=numpy.int64)
        assert plan_worker_shards(byte_counts, 3, 8) == [(0, 1), (1, 3)]

    def test_everything_fits_one_shard(self):
        byte_counts = numpy.array([1, 1, 1], dtype=numpy.int64)
        assert plan_worker_shards(byte_counts, 3, 1 << 30) == [(0, 3)]

    def test_shards_partition_the_workers(self):
        byte_counts = numpy.array(
            [3, 9, 1, 1, 1, 50, 2], dtype=numpy.int64
        )
        shards = plan_worker_shards(byte_counts, 7, 10)
        assert shards[0][0] == 0 and shards[-1][1] == 7
        for (_, hi), (lo, _) in zip(shards, shards[1:]):
            assert hi == lo


class _BadStep:
    """A fake routing step that emits an out-of-range receiver."""

    def route_columns(self, columns, p):
        destinations = numpy.full(
            len(columns[0]), p, dtype=numpy.int64
        )
        return columns, destinations, None


class TestRouteBlockCounts:
    def _plan_step_and_source(self, db, query_text="S1(x,y), S2(y,z)"):
        service = QueryService(db, p=8, backend="numpy")
        plan = service.compile(parse_query(query_text))
        step = plan.rounds[0].steps[0]
        from repro.engine.executor import _plan_sources

        return step, _plan_sources(db, "numpy")[step.relation]

    def test_counts_equal_monolithic_bincount(self, two_hop):
        db = matching_database(two_hop, n=50, rng=3)
        step, source = self._plan_step_and_source(db)
        _, destinations, _ = step.route_columns(source.columns, 8)
        monolithic = numpy.bincount(destinations, minlength=8)
        for chunk in (1, 7, 64, 10_000):
            counts = route_block_counts(
                step, source.columns, len(source), chunk, 8
            )
            assert numpy.array_equal(counts, monolithic)

    def test_out_of_range_receiver_raises_protocol_error(self):
        columns = (numpy.arange(4, dtype=numpy.int64),)
        with pytest.raises(ProtocolError):
            route_block_counts(_BadStep(), columns, 4, 2, 4)


class TestMaterializeShard:
    def _contribution(self, db, chunk):
        service = QueryService(db, p=8, backend="numpy")
        plan = service.compile(parse_query("S1(x,y), S2(y,z)"))
        step = plan.rounds[0].steps[0]
        from repro.engine.executor import _plan_sources

        source = _plan_sources(db, "numpy")[step.relation]
        return step, source, LazyContribution(
            step=step,
            columns=source.columns,
            num_rows=len(source),
            chunk_rows=chunk,
            source_sorted=step.preserves_source_order,
        )

    def test_shards_reproduce_the_monolithic_pool(self, two_hop):
        db = matching_database(two_hop, n=60, rng=5)
        step, source, contribution = self._contribution(db, chunk=7)
        columns, destinations, row_indices = step.route_columns(
            source.columns, 8
        )
        monolithic = bin_block(columns, destinations, row_indices, 8)
        pieces = [
            materialize_shard([contribution], lo, hi, 8)
            for lo, hi in ((0, 3), (3, 7), (7, 8))
        ]
        assert sum(len(piece) for piece in pieces) == len(monolithic)
        for position in range(len(monolithic.columns)):
            rebuilt = numpy.concatenate(
                [piece.columns[position] for piece in pieces]
            )
            assert numpy.array_equal(
                rebuilt, monolithic.columns[position]
            )

    def test_empty_contribution_yields_arity_preserving_empty(self, two_hop):
        db = matching_database(two_hop, n=20, rng=5)
        step, source, contribution = self._contribution(db, chunk=4)
        empty = dataclasses.replace(
            contribution,
            columns=tuple(
                column[:0] for column in contribution.columns
            ),
            num_rows=0,
        )
        pool = materialize_shard([empty], 0, 8, 8)
        assert len(pool) == 0
        assert len(pool.columns) == len(source.columns)
        assert pool.num_workers == 8


def _compile(query, db, chunk=None, **kwargs):
    kwargs.setdefault("backend", "numpy")
    return compile_hypercube(query, p=8, **kwargs)


class TestChunkBoundaries:
    """ISSUE satellite: chunk-edge behaviour of streamed executions."""

    def _parity(self, query, db, plan, chunk):
        monolithic = execute_plan(plan, db)
        streamed = execute_plan(plan, db, chunk_rows=chunk)
        assert streamed.answers == monolithic.answers
        assert streamed.per_server == monolithic.per_server
        mono_rounds = monolithic.report.rounds
        stream_rounds = streamed.report.rounds
        assert [s.received_bits for s in stream_rounds] == [
            s.received_bits for s in mono_rounds
        ]
        return streamed

    def test_relation_smaller_than_one_chunk(self, two_hop):
        db = matching_database(two_hop, n=40, rng=9)
        plan = _compile(two_hop, db)
        self._parity(two_hop, db, plan, chunk=10_000)

    def test_chunk_size_one(self, two_hop):
        db = matching_database(two_hop, n=25, rng=9)
        plan = _compile(two_hop, db)
        self._parity(two_hop, db, plan, chunk=1)

    def test_empty_relation_streams_to_empty_blocks(self, two_hop):
        from repro.data.database import Database, Relation

        db = matching_database(two_hop, n=30, rng=9)
        relations = dict(db.relations)
        relations["S2"] = Relation(
            name="S2",
            arity=2,
            tuples=(),
            domain_size=db.domain_size,
        )
        empty_db = Database(
            relations=relations, domain_size=db.domain_size
        )
        plan = _compile(two_hop, empty_db)
        streamed = self._parity(two_hop, empty_db, plan, chunk=4)
        assert streamed.answers == ()

    def test_blocks_entirely_filtered_by_kept_row_logic(self, triangle_db):
        # A repeated-variable atom drops contradicting rows during
        # routing; with chunk 1, every non-diagonal source row is a
        # block whose kept-row set is empty.
        query = parse_query("S1(x,x)")
        service = QueryService(triangle_db, p=8, backend="numpy")
        plan = service.compile(query)
        step = plan.rounds[0].steps[0]
        from repro.engine.executor import _plan_sources

        source = _plan_sources(triangle_db, "numpy")[step.relation]
        kept_per_row = [
            len(
                step.route_columns(
                    tuple(column[i : i + 1] for column in source.columns),
                    8,
                )[1]
            )
            for i in range(len(source))
        ]
        assert 0 in kept_per_row  # some block is entirely filtered
        self._parity(query, triangle_db, plan, chunk=1)

    def test_capacity_exceeded_mid_stream_then_reset_reuses(self, two_hop):
        db = matching_database(two_hop, n=50, rng=11)
        plan = _compile(
            two_hop, db, capacity_c=0.001, enforce_capacity=True
        )
        with pytest.raises(CapacityExceeded) as monolithic:
            execute_plan(plan, db)
        simulator = plan_simulator(plan, input_bits=db.total_bits)
        for _ in range(2):  # the second pass proves reset() recovery
            with pytest.raises(CapacityExceeded) as streamed:
                execute_plan(
                    plan, db, simulator=simulator, chunk_rows=8
                )
            assert streamed.value.worker == monolithic.value.worker
            assert (
                streamed.value.received_bits
                == monolithic.value.received_bits
            )
            assert (
                streamed.value.round_index
                == monolithic.value.round_index
            )
        # The failure aborted mid-round with lazy recipes staged; a
        # reset returns the pooled simulator to a clean, reusable
        # state for a successful streamed execution.
        simulator.reset()
        assert simulator.round_index == 0
        for relation in ("S1", "S2"):
            assert not simulator.has_lazy_deliveries(relation)
        generous = dataclasses.replace(
            plan,
            signature=dataclasses.replace(
                plan.signature, enforce_capacity=False
            ),
        )
        reused = execute_plan(
            generous, db, simulator=simulator, chunk_rows=8
        )
        fresh = execute_plan(generous, db)
        assert reused.answers == fresh.answers
        assert reused.per_server == fresh.per_server


class TestLazySimulatorState:
    def _streamed_simulator(self, two_hop, chunk=6):
        db = matching_database(two_hop, n=40, rng=13)
        plan = _compile(two_hop, db)
        simulator = plan_simulator(plan, input_bits=db.total_bits)
        execution = execute_plan(
            plan, db, simulator=simulator, chunk_rows=chunk
        )
        return db, plan, simulator, execution

    def test_streamed_relations_are_lazy_not_eager(self, two_hop):
        _, _, simulator, _ = self._streamed_simulator(two_hop)
        for relation in ("S1", "S2"):
            assert simulator.has_lazy_deliveries(relation)
            assert not simulator.has_eager_pools(relation)
            assert not simulator.has_row_deliveries(relation)
            assert simulator.lazy_contributions(relation)

    def test_pool_worker_counts_match_materialised_pool(self, two_hop):
        _, _, simulator, _ = self._streamed_simulator(two_hop)
        for relation in ("S1", "S2"):
            counts = simulator.pool_worker_counts(relation)
            pool = simulator.relation_pool(relation)
            assert pool is not None
            sizes = (pool.offsets[1:] - pool.offsets[:-1]).tolist()
            assert counts.tolist() == sizes
            bytes_ = simulator.pool_worker_bytes(relation)
            assert bytes_.tolist() == [
                size * len(pool.columns) * 8 for size in sizes
            ]

    def test_pool_shard_equals_full_pool_slice(self, two_hop):
        _, _, simulator, _ = self._streamed_simulator(two_hop)
        pool = simulator.relation_pool("S1")
        shard = simulator.pool_shard("S1", 2, 5)
        assert shard.num_workers == 3
        reference = pool.shard(2, 5)
        assert numpy.array_equal(shard.offsets, reference.offsets)
        for shard_col, reference_col in zip(
            shard.columns, reference.columns
        ):
            assert numpy.array_equal(shard_col, reference_col)
