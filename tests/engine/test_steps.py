"""Unit tests for the routing-step IR and the round engine.

The load-bearing invariant: for every step type, routing a relation
row by row (:meth:`RoutingStep.destinations`) and routing it in one
columnar pass (:meth:`RoutingStep.route_columns`) produce the same
multiset of (row, destination) pairs.  Everything the simulator
observes -- loads, mailbox contents, capacity failures -- follows
from that.
"""

from __future__ import annotations

import random
from collections import Counter
from fractions import Fraction

import pytest

from repro.backend import numpy_available
from repro.core.query import Atom, parse_query
from repro.data.columnar import ColumnarRelation
from repro.data.database import Relation
from repro.engine import (
    Broadcast,
    GridSpec,
    HashRoute,
    HeavyGridRoute,
    RemapRanks,
    RoundEngine,
    RoundRobinGrid,
    ToServer,
    grid_factors,
)
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)


def scalar_pairs(step, relation: Relation, p: int) -> Counter:
    """(row, destination) multiset via the per-row reference path."""
    pairs: Counter = Counter()
    for index, row in enumerate(relation.tuples):
        for destination in step.destinations(row, index, p):
            pairs[(row, destination)] += 1
    return pairs


def columnar_pairs(step, relation: Relation, p: int) -> Counter:
    """(row, destination) multiset via the vectorized path."""
    source = ColumnarRelation.from_relation(relation, backend="numpy")
    columns, destinations, row_indices = step.route_columns(
        source.columns, p
    )
    rows = list(zip(*(column.tolist() for column in columns))) or []
    pairs: Counter = Counter()
    destination_list = destinations.tolist()
    indices = (
        row_indices.tolist()
        if row_indices is not None
        else range(len(destination_list))
    )
    for row_index, destination in zip(indices, destination_list):
        pairs[(rows[row_index], destination)] += 1
    return pairs


def random_relation(name, arity, n, rows, rng) -> Relation:
    return Relation.from_tuples(
        name,
        [
            tuple(rng.randint(1, n) for _ in range(arity))
            for _ in range(rows)
        ],
        domain_size=n,
        arity=arity,
    )


class TestGridSpec:
    def test_share_lookup_and_sizes(self):
        grid = GridSpec(("x", "y"), (3, 4))
        assert grid.share("x") == 3
        assert grid.share("y") == 4
        assert grid.num_servers == 12
        assert grid.weights == (4, 1)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(("x",), (2, 3))

    def test_zero_share_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(("x",), (0,))

    def test_from_shares_orders_dimensions(self):
        grid = GridSpec.from_shares(("a", "b"), {"b": 5, "a": 2})
        assert grid.dimensions == (2, 5)


class TestMailboxKey:
    def test_defaults_to_relation(self):
        step = ToServer(relation="S1")
        assert step.mailbox_key == "S1"

    def test_namespaced_destination(self):
        step = ToServer(relation="S1", destination="V1:S1")
        assert step.mailbox_key == "V1:S1"


@needs_numpy
class TestHashRouteParity:
    @pytest.mark.parametrize("trial", range(4))
    def test_scalar_equals_columnar(self, trial):
        rng = random.Random(100 + trial)
        atom = Atom("S", ("x", "y"))
        grid = GridSpec(("x", "y", "z"), (3, 2, 4), HashFamily(trial))
        relation = random_relation("S", 2, 20, rng.randint(1, 60), rng)
        step = HashRoute(relation="S", atom=atom, grid=grid)
        assert scalar_pairs(step, relation, 24) == columnar_pairs(
            step, relation, 24
        )

    def test_repeated_variable_rows_filtered(self):
        atom = Atom("S", ("x", "x"))
        grid = GridSpec(("x",), (4,), HashFamily(0))
        relation = Relation.from_tuples(
            "S", [(1, 1), (1, 2), (3, 3)], domain_size=4
        )
        step = HashRoute(relation="S", atom=atom, grid=grid)
        pairs = scalar_pairs(step, relation, 4)
        assert pairs == columnar_pairs(step, relation, 4)
        routed_rows = {row for row, _ in pairs}
        assert routed_rows == {(1, 1), (3, 3)}

    def test_filter_off_ships_contradictory_rows(self):
        """Baseline semantics: route every tuple, equality unchecked."""
        atom = Atom("S", ("x", "x"))
        grid = GridSpec(("x",), (4,), HashFamily(0))
        relation = Relation.from_tuples(
            "S", [(1, 1), (1, 2), (3, 3)], domain_size=4
        )
        step = HashRoute(
            relation="S",
            atom=atom,
            grid=grid,
            filter_contradictions=False,
        )
        pairs = scalar_pairs(step, relation, 4)
        assert pairs == columnar_pairs(step, relation, 4)
        assert {row for row, _ in pairs} == {(1, 1), (1, 2), (3, 3)}

    def test_one_dimensional_grid_is_hash_partition(self):
        """Atom variables outside the grid are ignored (single-
        attribute join)."""
        atom = Atom("S", ("x", "y"))
        grid = GridSpec(("y",), (8,), HashFamily(2))
        relation = random_relation("S", 2, 30, 40, random.Random(5))
        step = HashRoute(relation="S", atom=atom, grid=grid)
        pairs = scalar_pairs(step, relation, 8)
        assert pairs == columnar_pairs(step, relation, 8)
        # Exactly one destination per surviving row: no replication.
        assert all(count == 1 for count in pairs.values())


@needs_numpy
class TestHeavyGridRouteParity:
    def heavy_step(self, heavy_values, roles, seed=0):
        atom = Atom("S1", ("x", "y"))
        grid = GridSpec(("x", "y", "z"), (2, 9, 2), HashFamily(seed))
        return HeavyGridRoute(
            relation="S1",
            atom=atom,
            grid=grid,
            heavy={"y": frozenset(heavy_values)},
            roles=roles,
        )

    @pytest.mark.parametrize("role", [0, 1])
    def test_cartesian_split_parity(self, role):
        rng = random.Random(role)
        relation = random_relation("S1", 2, 12, 80, rng)
        roles = {"y": {"S1": role, "S2": 1 - role}, "x": None, "z": None}
        step = self.heavy_step({1, 2, 3}, roles)
        assert scalar_pairs(step, relation, 36) == columnar_pairs(
            step, relation, 36
        )

    def test_spread_fallback_parity(self):
        """No two-atom role: heavy values spread over the dimension."""
        rng = random.Random(9)
        relation = random_relation("S1", 2, 12, 60, rng)
        step = self.heavy_step({1}, {"y": None})
        pairs = scalar_pairs(step, relation, 36)
        assert pairs == columnar_pairs(step, relation, 36)

    def test_no_heavy_values_equals_hash_route(self):
        rng = random.Random(4)
        relation = random_relation("S1", 2, 15, 50, rng)
        step = self.heavy_step(set(), {})
        hash_step = HashRoute(
            relation="S1", atom=step.atom, grid=step.grid
        )
        assert scalar_pairs(step, relation, 36) == scalar_pairs(
            hash_step, relation, 36
        )
        assert columnar_pairs(step, relation, 36) == columnar_pairs(
            hash_step, relation, 36
        )

    def test_heavy_axis_stays_inside_dimension(self):
        step = self.heavy_step({5}, {"y": {"S1": 0, "S2": 1}})
        share = step.grid.share("y")
        g1, g2 = grid_factors(share)
        assert g1 * g2 <= share
        axis = step._heavy_axis("y", share, (7, 5))
        assert all(0 <= coordinate < share for coordinate in axis)
        assert len(axis) == g2


@needs_numpy
class TestContentFreeStepsParity:
    def test_broadcast(self):
        relation = random_relation("S", 2, 10, 25, random.Random(1))
        step = Broadcast(relation="S")
        pairs = scalar_pairs(step, relation, 6)
        assert pairs == columnar_pairs(step, relation, 6)
        assert sum(pairs.values()) == len(relation.tuples) * 6

    def test_to_server(self):
        relation = random_relation("S", 1, 10, 25, random.Random(2))
        step = ToServer(relation="S", worker=3)
        pairs = scalar_pairs(step, relation, 6)
        assert pairs == columnar_pairs(step, relation, 6)
        assert {destination for _, destination in pairs} == {3}

    @pytest.mark.parametrize("axis", [0, 1])
    def test_round_robin_grid(self, axis):
        relation = random_relation("S", 1, 30, 17, random.Random(3))
        grid = GridSpec(("left", "right"), (3, 3))
        step = RoundRobinGrid(relation="S", grid=grid, axis=axis)
        assert scalar_pairs(step, relation, 9) == columnar_pairs(
            step, relation, 9
        )


@needs_numpy
class TestRemapRanksParity:
    def test_subsampled_virtual_grid(self):
        rng = random.Random(6)
        atom = Atom("S", ("x", "y"))
        grid = GridSpec(("x", "y"), (4, 4), HashFamily(1))
        relation = random_relation("S", 2, 16, 50, rng)
        mapping = {0: 0, 3: 1, 7: 2, 12: 3, 15: 0}
        step = RemapRanks(
            relation="S",
            inner=HashRoute(relation="S", atom=atom, grid=grid),
            mapping=mapping,
            virtual_size=16,
        )
        pairs = scalar_pairs(step, relation, 4)
        assert pairs == columnar_pairs(step, relation, 4)
        # Only mapped workers ever receive anything.
        assert {destination for _, destination in pairs} <= set(
            mapping.values()
        )

    def test_empty_mapping_drops_everything(self):
        atom = Atom("S", ("x",))
        grid = GridSpec(("x",), (4,), HashFamily(0))
        relation = random_relation("S", 1, 8, 20, random.Random(1))
        step = RemapRanks(
            relation="S",
            inner=HashRoute(relation="S", atom=atom, grid=grid),
            mapping={},
            virtual_size=4,
        )
        assert scalar_pairs(step, relation, 4) == Counter()
        assert columnar_pairs(step, relation, 4) == Counter()


class TestRoundEngine:
    def run_engine(self, backend):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        relation1 = random_relation("S1", 2, 12, 40, random.Random(7))
        relation2 = random_relation("S2", 2, 12, 40, random.Random(8))
        grid = GridSpec.from_shares(
            query.variables, {"x": 1, "y": 8, "z": 1}, HashFamily(1)
        )
        config = MPCConfig(p=8, eps=Fraction(0), backend=backend)
        simulator = MPCSimulator(
            config,
            input_bits=relation1.size_bits + relation2.size_bits,
            enforce_capacity=False,
        )
        engine = RoundEngine(simulator)
        steps = [
            HashRoute(relation=atom.name, atom=atom, grid=grid)
            for atom in query.atoms
        ]
        sources = {
            relation.name: ColumnarRelation.from_relation(relation, backend)
            for relation in (relation1, relation2)
        }
        stats = engine.run_round(steps, sources)
        return stats

    def test_pure_round_accounting(self):
        stats = self.run_engine("pure")
        assert stats.round_index == 1
        assert sum(stats.received_tuples) > 0

    @needs_numpy
    def test_backends_ship_identical_loads(self):
        pure = self.run_engine("pure")
        vectorized = self.run_engine("numpy")
        assert pure.received_bits == vectorized.received_bits
        assert pure.received_tuples == vectorized.received_tuples

    def test_engine_backend_follows_config(self):
        config = MPCConfig(p=2, backend="pure")
        simulator = MPCSimulator(config, input_bits=0)
        assert RoundEngine(simulator).backend == "pure"
