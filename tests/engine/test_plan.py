"""Unit tests for the Plan IR and plan execution.

The compile/execute seam's contract: compilation is pure and
data-independent, execution of the same plan is deterministic (cached
and fresh runs bit-identical), and a plan can be rebound onto an
isomorphic query's relations.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.baselines import (
    compile_broadcast_join,
    compile_single_attribute_join,
    compile_single_server,
)
from repro.algorithms.components import compile_hash_to_min
from repro.algorithms.hypercube import compile_hypercube, run_hypercube
from repro.algorithms.multiround import compile_multiround
from repro.algorithms.skewaware import compile_skew_aware
from repro.core.plans import build_plan
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.engine import (
    CollectAnswers,
    FinalizeView,
    Plan,
    RoutedStep,
    execute_plan,
    plan_simulator,
)
from repro.mpc.simulator import MPCSimulator


@pytest.fixture
def two_hop_db(two_hop):
    return matching_database(two_hop, n=40, rng=3)


class TestCompilation:
    def test_compile_is_deterministic(self, two_hop):
        a = compile_hypercube(two_hop, p=8)
        b = compile_hypercube(two_hop, p=8)
        assert a.signature == b.signature
        assert a.rounds == b.rounds
        assert a.finalize == b.finalize

    def test_signature_captures_parameters(self, two_hop):
        plan = compile_hypercube(
            two_hop, p=8, eps=Fraction(1, 2), seed=7, backend="pure"
        )
        signature = plan.signature
        assert signature.algorithm == "hypercube"
        assert signature.eps == Fraction(1, 2)
        assert signature.p == 8
        assert signature.seed == 7
        assert signature.backend == "pure"
        assert str(two_hop) == signature.query_text

    def test_cache_keys_differ_per_parameter(self, two_hop):
        base = compile_hypercube(two_hop, p=8).signature.cache_key
        assert compile_hypercube(two_hop, p=16).signature.cache_key != base
        assert (
            compile_hypercube(two_hop, p=8, eps=Fraction(1, 2))
            .signature.cache_key
            != base
        )

    def test_plan_is_frozen(self, two_hop):
        plan = compile_hypercube(two_hop, p=8)
        with pytest.raises(AttributeError):
            plan.signature = None

    def test_relations_lists_database_names_only(self):
        query = parse_query("S1(a,b), S2(b,c), S3(c,d), S4(d,e)")
        physical = compile_multiround(build_plan(query, Fraction(0)), p=8)
        assert set(physical.relations()) == {"S1", "S2", "S3", "S4"}
        assert isinstance(physical.finalize, FinalizeView)

    def test_all_compilers_emit_plans(self, triangle):
        assert isinstance(compile_skew_aware(triangle, p=8), Plan)
        assert isinstance(compile_broadcast_join(triangle, p=4), Plan)
        assert isinstance(compile_single_server(triangle), Plan)
        assert isinstance(
            compile_single_attribute_join(parse_query("A(x,y), B(y,x)"), p=4),
            Plan,
        )

    def test_fixpoint_plan_refused_by_execute(self):
        plan = compile_hash_to_min(p=4)
        assert plan.fixpoint is not None
        with pytest.raises(ValueError, match="fixpoint"):
            execute_plan(plan, {})


class TestExecution:
    def test_execution_matches_run_entrypoint(self, two_hop, two_hop_db):
        plan = compile_hypercube(two_hop, p=8)
        execution = execute_plan(plan, two_hop_db)
        result = run_hypercube(two_hop, two_hop_db, p=8)
        assert execution.answers == result.answers
        assert execution.per_server == result.per_server_answers

    def test_repeated_execution_is_bit_identical(self, two_hop, two_hop_db):
        plan = compile_hypercube(two_hop, p=8)
        first = execute_plan(plan, two_hop_db)
        second = execute_plan(plan, two_hop_db)
        assert first.answers == second.answers
        assert first.per_server == second.per_server
        assert [r.received_bits for r in first.report.rounds] == [
            r.received_bits for r in second.report.rounds
        ]

    def test_collect_answers_finalize(self, two_hop):
        plan = compile_hypercube(two_hop, p=8)
        assert isinstance(plan.finalize, CollectAnswers)
        assert plan.finalize.workers == plan.allocation.used_servers

    def test_relation_map_executes_renamed_vocabulary(self, two_hop):
        # Compile for S1/S2, execute against a database whose data
        # lives under T1/T2.
        database = matching_database(two_hop, n=30, rng=5)
        renamed = {
            "T1": database["S1"],
            "T2": database["S2"],
        }
        plan = compile_hypercube(two_hop, p=8)
        direct = execute_plan(plan, database)
        mapped = execute_plan(
            plan,
            renamed,
            relation_map={"S1": "T1", "S2": "T2"},
        )
        assert mapped.answers == direct.answers
        assert mapped.per_server == direct.per_server

    def test_simulator_reuse_is_bit_identical(self, two_hop, two_hop_db):
        plan = compile_hypercube(two_hop, p=8)
        fresh = execute_plan(plan, two_hop_db)
        simulator = MPCSimulator(
            fresh.simulator.config,
            input_bits=two_hop_db.total_bits,
            enforce_capacity=False,
        )
        # Dirty the simulator with one run, then reuse it.
        execute_plan(plan, two_hop_db, simulator=simulator)
        reused = execute_plan(plan, two_hop_db, simulator=simulator)
        assert reused.answers == fresh.answers
        assert reused.per_server == fresh.per_server
        assert [r.received_bits for r in reused.report.rounds] == [
            r.received_bits for r in fresh.report.rounds
        ]

    def test_plan_simulator_rejects_config_mismatch(self, two_hop):
        plan8 = compile_hypercube(two_hop, p=8)
        plan4 = compile_hypercube(two_hop, p=4)
        simulator = plan_simulator(plan8, input_bits=100)
        with pytest.raises(ValueError, match="config"):
            plan_simulator(plan4, input_bits=100, simulator=simulator)

    def test_routed_cache_replay_is_bit_identical(self, two_hop, two_hop_db):
        plan = compile_hypercube(two_hop, p=8)
        cache: dict = {}
        first = execute_plan(plan, two_hop_db, routed_cache=cache)
        assert cache and all(
            isinstance(value, RoutedStep) for value in cache.values()
        )
        replay = execute_plan(plan, two_hop_db, routed_cache=cache)
        assert replay.answers == first.answers
        assert replay.per_server == first.per_server
        assert [r.received_bits for r in replay.report.rounds] == [
            r.received_bits for r in first.report.rounds
        ]

    def test_multiround_plan_execution(self):
        query = parse_query("S1(a,b), S2(b,c), S3(c,d), S4(d,e)")
        database = matching_database(query, n=30, rng=2)
        physical = compile_multiround(build_plan(query, Fraction(0)), p=8)
        execution = execute_plan(physical, database)
        from repro.algorithms.localjoin import evaluate_query

        truth = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        assert execution.answers == truth
        assert execution.view_sizes

    def test_skew_plan_binds_heavy_at_execute(self):
        from repro.data.generators import skewed_database

        query = parse_query("S1(x,y), S2(y,z)")
        database = skewed_database(query, n=60, rng=1, heavy_fraction=0.5)
        plan = compile_skew_aware(query, p=8)
        # The compiled steps carry no heavy values...
        assert all(
            not any(step.heavy.values())
            for step in plan.rounds[0].steps
        )
        execution = execute_plan(plan, database)
        # ...but the execution detected and bound them.
        assert execution.heavy_hitters is not None
        assert any(execution.heavy_hitters.values())


class TestProfilerAttribution:
    def test_route_time_lands_on_its_own_round(self):
        from repro.core.plans import build_plan
        from repro.engine import RoundProfiler

        query = parse_query("S1(a,b), S2(b,c), S3(c,d), S4(d,e)")
        database = matching_database(query, n=20, rng=1)
        physical = compile_multiround(build_plan(query, Fraction(0)), p=8)
        profiler = RoundProfiler()
        execute_plan(physical, database, profiler=profiler)
        # Two plan rounds: every profiled round index is a real round
        # (no spurious "round 0") and each one has route time.
        assert sorted(profiler.rounds) == [1, 2]
        assert all(
            "route" in phases for phases in profiler.rounds.values()
        )

    def test_full_replay_skips_heavy_detection(self, monkeypatch):
        from repro.data.generators import skewed_database

        query = parse_query("S1(x,y), S2(y,z)")
        database = skewed_database(query, n=40, rng=1, heavy_fraction=0.5)
        plan = compile_skew_aware(query, p=8)
        cache: dict = {}
        first = execute_plan(plan, database, routed_cache=cache)
        assert first.heavy_hitters is not None

        import repro.algorithms.skewaware as skewaware

        def boom(*args, **kwargs):
            raise AssertionError("detection must not run on full replay")

        monkeypatch.setattr(skewaware, "detect_heavy_hitters", boom)
        replay = execute_plan(plan, database, routed_cache=cache)
        assert replay.answers == first.answers
        assert replay.per_server == first.per_server
        assert replay.heavy_hitters is None
