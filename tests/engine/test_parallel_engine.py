"""Process-parallel routing: shard parity, fallback, pool slicing."""

from __future__ import annotations

import pytest

numpy = pytest.importorskip("numpy")

from repro.data.matching import matching_database
from repro.engine.executor import RoundEngine, execute_plan, plan_simulator
from repro.engine.parallel.engine import (
    DEFAULT_MIN_ROWS,
    ParallelContext,
    ParallelRoundEngine,
)
from repro.engine.steps import (
    Broadcast,
    HashRoute,
    HeavyGridRoute,
    RoundRobinGrid,
    ToServer,
)
from repro.mpc.simulator import ColumnPool
from repro.serve.service import QueryService


class TestShardableContract:
    """The static declarations the parallel engine dispatches on."""

    def test_content_only_steps_are_shardable(self, triangle, triangle_db):
        service = QueryService(triangle_db, p=8, backend="numpy")
        plan = service.compile(triangle)
        steps = [step for round_ in plan.rounds for step in round_.steps]
        assert steps and all(isinstance(step, HashRoute) for step in steps)
        assert all(step.shardable for step in steps)

    def test_index_and_signature_steps_are_not(self):
        from repro.engine.steps import RemapRanks, RoutingStep

        # Index- and signature-dependent routes inherit the base's
        # safe False instead of declaring shardability.
        for step_type in (RoundRobinGrid, HeavyGridRoute):
            assert "shardable" not in step_type.__dict__
        assert RoutingStep(relation="S1").shardable is False
        # RemapRanks overrides to delegate to its inner step.
        assert "shardable" in RemapRanks.__dict__
        assert Broadcast(relation="S1").shardable is True
        assert ToServer(relation="S1").shardable is True


class TestColumnPoolShard:
    def _pool(self):
        columns = (
            numpy.arange(10, dtype=numpy.int64),
            numpy.arange(10, 20, dtype=numpy.int64),
        )
        offsets = numpy.array([0, 3, 3, 7, 10], dtype=numpy.int64)
        return ColumnPool(columns=columns, offsets=offsets, source_sorted=True)

    def test_shard_rebases_offsets(self):
        pool = self._pool()
        shard = pool.shard(2, 4)
        assert shard.num_workers == 2
        assert shard.offsets.tolist() == [0, 4, 7]
        assert numpy.array_equal(
            shard.worker_slice(0)[0], pool.worker_slice(2)[0]
        )
        assert numpy.array_equal(
            shard.worker_slice(1)[1], pool.worker_slice(3)[1]
        )
        assert shard.source_sorted is pool.source_sorted

    def test_shards_cover_the_pool(self):
        pool = self._pool()
        left, right = pool.shard(0, 2), pool.shard(2, 4)
        assert len(left) + len(right) == len(pool)
        assert numpy.array_equal(
            numpy.concatenate([left.columns[0], right.columns[0]]),
            pool.columns[0],
        )

    def test_out_of_range_shard_raises(self):
        pool = self._pool()
        with pytest.raises(ValueError):
            pool.shard(3, 5)
        with pytest.raises(ValueError):
            pool.shard(-1, 2)

    def test_relation_pool_shards(self, triangle, triangle_db):
        service = QueryService(triangle_db, p=8, backend="numpy")
        plan = service.compile(triangle)
        simulator = plan_simulator(plan, 10_000)
        execute_plan(plan, triangle_db, simulator=simulator)
        assert simulator.relation_pool_shards("missing", 3) is None
        shards = simulator.relation_pool_shards("S1", 3)
        pool = simulator.relation_pool("S1")
        assert shards is not None
        assert [(lo, hi) for lo, hi, _ in shards][0][0] == 0
        assert shards[-1][1] == pool.num_workers
        total = sum(len(shard) for _, _, shard in shards)
        assert total == len(pool)
        with pytest.raises(ValueError):
            simulator.relation_pool_shards("S1", 0)


def _shard_results(step, columns, bounds, p):
    """What the pool's workers would return, computed in-process."""
    results = []
    for start, end in bounds:
        shard = tuple(column[start:end] for column in columns)
        routed_columns, destinations, row_indices = step.route_columns(
            shard, p
        )
        kept = len(routed_columns[0]) if routed_columns else 0
        results.append(
            {
                "destinations": destinations,
                "row_indices": row_indices,
                "kept": kept,
                "columns": (
                    None if kept == (end - start) else routed_columns
                ),
                "seconds": 0.0,
            }
        )
    return results


class TestReassembly:
    """Shard-and-concatenate equals the serial route, element for element."""

    P = 8

    def _source(self, relation, database):
        from repro.engine.executor import _plan_sources

        return _plan_sources(database, "numpy")[relation]

    def _bounds(self, num_rows, shards):
        chunk = -(-num_rows // shards)
        return [
            (start, min(start + chunk, num_rows))
            for start in range(0, num_rows, chunk)
        ]

    def _check(self, step, source, shards=3):
        serial_columns, serial_dest, serial_idx = step.route_columns(
            source.columns, self.P
        )
        bounds = self._bounds(len(source), shards)
        results = _shard_results(step, source.columns, bounds, self.P)
        routed = ParallelRoundEngine._reassemble(
            numpy, source, bounds, results
        )
        assert numpy.array_equal(routed.destinations, serial_dest)
        for rebuilt, serial in zip(routed.columns, serial_columns):
            assert numpy.array_equal(rebuilt, serial)
        if serial_idx is None:
            assert routed.row_indices is None
        else:
            assert numpy.array_equal(routed.row_indices, serial_idx)

    def test_hash_route(self, triangle, triangle_db):
        service = QueryService(triangle_db, p=self.P, backend="numpy")
        plan = service.compile(triangle)
        step = plan.rounds[0].steps[0]
        assert isinstance(step, HashRoute)
        self._check(step, self._source(step.relation, triangle_db))

    def test_hash_route_with_filtered_rows(self, triangle_db):
        # A repeated-variable atom drops contradicting rows during
        # routing, exercising the kept-offset arithmetic.
        from repro.core.query import parse_query

        query = parse_query("S1(x,x)")
        service = QueryService(triangle_db, p=self.P, backend="numpy")
        plan = service.compile(query)
        step = plan.rounds[0].steps[0]
        source = self._source(step.relation, triangle_db)
        _, _, serial_idx = step.route_columns(source.columns, self.P)
        assert serial_idx is not None  # the filter actually bit
        self._check(step, source)

    def test_to_server(self, triangle_db):
        source = self._source("S1", triangle_db)
        self._check(ToServer(relation="S1", worker=3), source)

    def test_broadcast_is_pool_identical(self, triangle_db):
        # Broadcast's sharded emission is shard-major rather than
        # worker-major, so element identity does not hold -- but the
        # multiset of (destination, row) pairs does, and the
        # simulator's stable sort by receiver makes delivered pools
        # (hence answers and loads) bit-identical.  The end-to-end
        # tests below pin the pool-level equality.
        step = Broadcast(relation="S1")
        source = self._source("S1", triangle_db)
        columns, destinations, row_indices = step.route_columns(
            source.columns, self.P
        )
        bounds = self._bounds(len(source), 3)
        results = _shard_results(step, source.columns, bounds, self.P)
        routed = ParallelRoundEngine._reassemble(
            numpy, source, bounds, results
        )

        def pairs(cols, dest, idx):
            rows = numpy.stack([col[idx] for col in cols], axis=1)
            return sorted(
                (int(d), tuple(int(v) for v in row))
                for d, row in zip(dest, rows)
            )

        assert pairs(
            routed.columns, routed.destinations, routed.row_indices
        ) == pairs(columns, destinations, row_indices)

    def test_single_shard_degenerates_to_serial(self, triangle, triangle_db):
        service = QueryService(triangle_db, p=self.P, backend="numpy")
        plan = service.compile(triangle)
        step = plan.rounds[0].steps[0]
        self._check(step, self._source(step.relation, triangle_db), shards=1)


class TestExecutePlanParallel:
    """End-to-end: the real spawn pool against the serial engine."""

    @pytest.fixture(scope="class")
    def context(self):
        with ParallelContext(2, min_rows=0) as context:
            yield context

    def _plan(self, query, database, p=8, **kwargs):
        service = QueryService(database, p=p, backend="numpy")
        return service.compile(query, **kwargs)

    def test_parity_and_round_counters(self, triangle, triangle_db, context):
        plan = self._plan(triangle, triangle_db)
        serial = execute_plan(plan, triangle_db)
        before = context.parallel_rounds
        parallel = execute_plan(plan, triangle_db, parallel=context)
        assert parallel.answers == serial.answers
        assert parallel.per_server == serial.per_server
        assert context.parallel_rounds > before

    def test_min_rows_threshold_falls_back(self, triangle, triangle_db):
        plan = self._plan(triangle, triangle_db)
        serial = execute_plan(plan, triangle_db)
        with ParallelContext(2, min_rows=DEFAULT_MIN_ROWS) as context:
            parallel = execute_plan(plan, triangle_db, parallel=context)
            assert parallel.answers == serial.answers
            assert context.parallel_rounds == 0
            assert context.fallback_rounds > 0

    def test_closed_context_is_ignored(self, triangle, triangle_db):
        plan = self._plan(triangle, triangle_db)
        context = ParallelContext(2, min_rows=0)
        context.close()
        assert not context.usable
        execution = execute_plan(plan, triangle_db, parallel=context)
        serial = execute_plan(plan, triangle_db)
        assert execution.answers == serial.answers
        assert context.parallel_rounds == 0

    def test_workers_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            ParallelContext(1)

    def test_no_segments_leak_after_close(self, triangle, triangle_db):
        from repro.engine.parallel.shm import segment_exists

        plan = self._plan(triangle, triangle_db)
        context = ParallelContext(2, min_rows=0)
        try:
            execute_plan(plan, triangle_db, parallel=context)
            names = list(context.store.names)
            assert names
        finally:
            context.close()
        assert not any(segment_exists(name) for name in names)


class TestServiceParallel:
    """QueryService(workers=N): dispatch, counters, parity per route."""

    from fractions import Fraction

    ALGORITHMS = (
        ("hypercube", {}),
        ("skewaware", {}),
        ("multiround", {}),
        ("partial", {"eps": Fraction(1, 4)}),
    )

    @pytest.fixture(scope="class")
    def database(self):
        from repro.core.families import cycle_query

        return matching_database(cycle_query(3), n=60, rng=11)

    @pytest.mark.parametrize(
        "algorithm,overrides", ALGORITHMS, ids=[a for a, _ in ALGORITHMS]
    )
    def test_parity_per_route(self, triangle, database, algorithm, overrides):
        serial = QueryService(database, p=8, backend="numpy")
        parallel = QueryService(
            database, p=8, backend="numpy", workers=2, parallel_min_rows=0
        )
        try:
            expected = serial.execute(
                triangle, algorithm=algorithm, **overrides
            )
            actual = parallel.execute(
                triangle, algorithm=algorithm, **overrides
            )
            assert actual.answers == expected.answers
            assert actual.per_server == expected.per_server
            assert actual.algorithm == expected.algorithm
            assert (
                parallel.stats.parallel_rounds
                + parallel.stats.fallback_rounds
            ) > 0
        finally:
            serial.close()
            parallel.close()

    def test_pure_backend_never_builds_a_context(self, triangle, database):
        service = QueryService(database, p=8, backend="pure", workers=2)
        try:
            service.execute(triangle)
            assert service._parallel_context() is None
            assert service.stats.parallel_rounds == 0
        finally:
            service.close()

    def test_single_worker_never_builds_a_context(self, triangle, database):
        service = QueryService(database, p=8, backend="numpy")
        try:
            service.execute(triangle)
            assert service._parallel_context() is None
        finally:
            service.close()

    def test_close_then_execute_rebuilds_the_context(self, triangle, database):
        from repro.engine.parallel.shm import segment_exists

        service = QueryService(
            database,
            p=8,
            backend="numpy",
            workers=2,
            parallel_min_rows=0,
            result_cache_size=0,  # force the re-execution to route
        )
        try:
            first = service.execute(triangle)
            names = list(service._parallel.store.names)
            service.close()
            assert not any(segment_exists(name) for name in names)
            # The service stays usable: the next execution rebuilds a
            # fresh context (and pool) transparently.
            second = service.execute(triangle)
            assert second.answers == first.answers
            assert service._parallel is not None
        finally:
            service.close()
