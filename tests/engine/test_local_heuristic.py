"""The segmented-vs-per-worker size heuristic (engine/local.py).

Both sides of the dispatch must be reachable, pick the path the
density says, and return identical answers either way.
"""

from __future__ import annotations

import pytest

import repro.engine.local as local
from repro.backend import numpy_available
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.engine import GridSpec, HashRoute, RoundEngine, collect_answers
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)


def _routed_round(n=50, p=8):
    query = parse_query("S1(x,y), S2(y,z)")
    database = matching_database(query, n=n, rng=3)
    grid = GridSpec.from_shares(
        query.variables,
        {"x": 1, "y": p, "z": 1},
        HashFamily(0),
    )
    config = MPCConfig(p=p, backend="numpy")
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    from repro.data.columnar import columnar_database

    RoundEngine(simulator).run_round(
        [
            HashRoute(relation=atom.name, atom=atom, grid=grid)
            for atom in query.atoms
        ],
        columnar_database(database, "numpy"),
    )
    return query, simulator, list(range(p))


class TestHeuristicDecision:
    def test_dense_deliveries_prefer_segmented(self):
        query, simulator, workers = _routed_round()
        # Hash-partitioned deliveries of a matching database: total
        # rows == 2n, max key == n, so density == 2/len(workers)...
        # force the decision boundaries with the threshold itself.
        assert (
            local._prefer_segmented(
                query, simulator, [0], local._identity_key
            )
            is True
        )

    def test_sparse_deliveries_prefer_per_worker(self):
        query, simulator, workers = _routed_round()
        assert (
            local._prefer_segmented(
                query, simulator, list(range(1000)), local._identity_key
            )
            is False
        )

    def test_missing_pools_return_none(self):
        query, simulator, workers = _routed_round()
        simulator.begin_round()
        simulator.send(0, 0, "S1", [(1, 1)], 2)  # row-path delivery
        simulator.end_round()
        assert (
            local._prefer_segmented(
                query, simulator, workers, local._identity_key
            )
            is None
        )


class TestDispatch:
    def _spy(self, monkeypatch):
        calls = []
        fleet = local.fleet_answer_table
        per_worker = local.merged_answer_table_per_worker

        def spy_fleet(*args, **kwargs):
            calls.append("segmented")
            return fleet(*args, **kwargs)

        def spy_per_worker(*args, **kwargs):
            calls.append("per-worker")
            return per_worker(*args, **kwargs)

        monkeypatch.setattr(local, "fleet_answer_table", spy_fleet)
        monkeypatch.setattr(
            local, "merged_answer_table_per_worker", spy_per_worker
        )
        return calls

    def test_default_dispatch_segmented_side(self, monkeypatch):
        query, simulator, workers = _routed_round()
        calls = self._spy(monkeypatch)
        monkeypatch.setattr(local, "SEGMENTED_DENSITY_THRESHOLD", 0.0)
        answers, per_server = collect_answers(
            query, simulator, workers, "numpy"
        )
        assert calls == ["segmented"]
        reference = collect_answers(
            query, simulator, workers, "numpy", segmented=False
        )
        assert (answers, per_server) == reference

    def test_default_dispatch_per_worker_side(self, monkeypatch):
        query, simulator, workers = _routed_round()
        calls = self._spy(monkeypatch)
        monkeypatch.setattr(
            local, "SEGMENTED_DENSITY_THRESHOLD", float("inf")
        )
        answers, per_server = collect_answers(
            query, simulator, workers, "numpy"
        )
        assert calls == ["per-worker"]
        reference = collect_answers(
            query, simulator, workers, "numpy", segmented=True
        )
        assert (answers, per_server) == reference

    def test_both_sides_identical_at_real_threshold(self):
        query, simulator, workers = _routed_round()
        segmented = collect_answers(
            query, simulator, workers, "numpy", segmented=True
        )
        per_worker = collect_answers(
            query, simulator, workers, "numpy", segmented=False
        )
        default = collect_answers(query, simulator, workers, "numpy")
        assert segmented == per_worker == default
