"""Shared-memory column transport: lifecycle, refcounts, crash safety."""

from __future__ import annotations

import multiprocessing
import time

import pytest

numpy = pytest.importorskip("numpy")

from repro.engine.parallel.shm import (
    _ATTACH_LIMIT,
    _ATTACHED,
    SharedColumnStore,
    attach_columns,
    attach_snapshot,
    detach_all,
    detach_names,
    export_snapshot,
    segment_exists,
)


def _columns(rows: int = 100, arity: int = 3) -> tuple:
    rng = numpy.random.default_rng(7)
    return tuple(
        rng.integers(1, 1000, size=rows, dtype=numpy.int64)
        for _ in range(arity)
    )


class TestSharedColumnStore:
    def test_share_attach_roundtrip(self):
        columns = _columns()
        with SharedColumnStore() as store:
            handle = store.share(columns)
            views = attach_columns(handle)
            assert len(views) == len(columns)
            for view, column in zip(views, columns):
                assert numpy.array_equal(view, column)
                # Zero-copy views of a shared snapshot are read-only.
                with pytest.raises(ValueError):
                    view[0] = 0
            detach_all()
        assert not segment_exists(handle.name)

    def test_identity_dedup_and_refcount(self):
        columns = _columns()
        store = SharedColumnStore()
        try:
            first = store.share(columns)
            second = store.share(columns)
            assert first.name == second.name
            store.release(first)
            assert segment_exists(first.name)  # one reference left
            store.release(second)
            assert not segment_exists(first.name)
        finally:
            store.close()

    def test_close_unlinks_everything(self):
        store = SharedColumnStore()
        handles = [store.share(_columns(rows)) for rows in (10, 20, 30)]
        assert all(segment_exists(handle.name) for handle in handles)
        store.close()
        assert not any(segment_exists(handle.name) for handle in handles)
        store.close()  # idempotent

    def test_release_of_unknown_handle_is_harmless(self):
        store = SharedColumnStore()
        handle = store.share(_columns())
        store.release(handle)
        store.release(handle)  # refcount already zero: no-op
        store.close()


class TestSnapshotExport:
    @pytest.mark.parametrize("backend", ["numpy", "pure"])
    def test_export_attach_roundtrip(self, triangle, backend):
        from repro.data.matching import matching_database
        from repro.data.versioned import VersionedDatabase

        database = VersionedDatabase(
            matching_database(triangle, n=30, rng=3), backend=backend
        )
        with SharedColumnStore() as store:
            export = export_snapshot(
                database.snapshot, store, version=database.version
            )
            assert export.version == database.version
            rebuilt = attach_snapshot(export)
            for name, relation in database.snapshot.relations.items():
                assert sorted(rebuilt.relations[name].rows()) == sorted(
                    relation.rows()
                )
            detach_all()


class TestAttachmentCache:
    """The child-side mapping cache must stay bounded (review: a
    long-running worker churning per-query segments held every mmap --
    and the physical pages of already-unlinked segments -- forever)."""

    def test_cache_is_lru_bounded(self):
        detach_all()
        with SharedColumnStore() as store:
            for _ in range(_ATTACH_LIMIT + 8):
                attach_columns(store.share(_columns(rows=4)))
            assert len(_ATTACHED) <= _ATTACH_LIMIT
            detach_all()

    def test_detach_names_closes_targeted_mappings(self):
        detach_all()
        with SharedColumnStore() as store:
            handle = store.share(_columns(rows=4))
            attach_columns(handle)
            assert handle.name in _ATTACHED
            detach_names([handle.name, "repro_no_such_segment"])
            assert handle.name not in _ATTACHED

    def test_pinned_mappings_survive_detach_and_eviction(self):
        # A fan-out worker's snapshot views live for the process, so
        # their mappings are pinned: neither targeted detaches nor LRU
        # pressure may close the mmap under them.
        detach_all()
        with SharedColumnStore() as store:
            handle = store.share(_columns(rows=4))
            views = attach_columns(handle, pin=True)
            detach_names([handle.name])
            assert handle.name in _ATTACHED
            for _ in range(_ATTACH_LIMIT + 8):
                attach_columns(store.share(_columns(rows=4)))
            assert handle.name in _ATTACHED
            assert int(views[0][0]) >= 0  # still readable
            detach_all()  # teardown closes pinned mappings too
            assert handle.name not in _ATTACHED


def _attach_and_hang(name: str, lengths, ready) -> None:
    from repro.engine.parallel.shm import SegmentHandle, attach_columns

    attach_columns(SegmentHandle(name=name, lengths=tuple(lengths)))
    ready.set()
    time.sleep(60)


class TestCrashSafety:
    def test_killed_child_does_not_block_unlink(self):
        columns = _columns()
        store = SharedColumnStore()
        handle = store.share(columns)
        context = multiprocessing.get_context("spawn")
        ready = context.Event()
        child = context.Process(
            target=_attach_and_hang,
            args=(handle.name, handle.lengths, ready),
            daemon=True,
        )
        child.start()
        try:
            assert ready.wait(timeout=30), "child never attached"
            child.kill()
            child.join(timeout=30)
            assert not child.is_alive()
        finally:
            store.close()
        # The parent's close unlinked the segment even though a child
        # died while attached -- crash safety never depends on children.
        assert not segment_exists(handle.name)
