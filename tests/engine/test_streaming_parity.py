"""Streamed execution is bit-identical to monolithic, everywhere.

The ISSUE's non-negotiable: answers, per-server loads, views and
``CapacityExceeded`` must match the monolithic path for every
algorithm x backend x chunk size -- chunk infinity literally *is* the
monolithic code path, and the ``pure`` backend ignores the knob
entirely.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

numpy = pytest.importorskip("numpy")

from repro import connect
from repro.algorithms.hypercube import compile_hypercube
from repro.algorithms.multiround import compile_multiround
from repro.core.families import cycle_query, line_query
from repro.core.plans import build_plan
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.engine.executor import execute_plan
from repro.engine.parallel.engine import ParallelContext
from repro.engine.profile import RoundProfiler
from repro.mpc.simulator import CapacityExceeded
from repro.serve.service import QueryService

CHUNKS = (1, 7, 1000, None)


def _assert_parity(monolithic, streamed, label):
    assert streamed.answers == monolithic.answers, label
    assert streamed.per_server == monolithic.per_server, label
    assert streamed.view_sizes == monolithic.view_sizes, label
    assert (
        streamed.per_server_views == monolithic.per_server_views
    ), label
    mono_rounds = monolithic.report.rounds
    stream_rounds = streamed.report.rounds
    assert len(stream_rounds) == len(mono_rounds), label
    assert [s.received_bits for s in stream_rounds] == [
        s.received_bits for s in mono_rounds
    ], label
    assert [s.received_tuples for s in stream_rounds] == [
        s.received_tuples for s in mono_rounds
    ], label


class TestSerialParity:
    """execute_plan(chunk_rows=...) against the monolithic run."""

    def _cases(self, backend):
        two_hop = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        chain = line_query(4)
        return [
            (
                two_hop,
                compile_hypercube(two_hop, p=8, backend=backend),
            ),
            (
                chain,
                compile_multiround(
                    build_plan(chain, Fraction(0)), p=8, backend=backend
                ),
            ),
        ]

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_numpy_backend_parity(self, chunk):
        for query, plan in self._cases("numpy"):
            db = matching_database(query, n=90, rng=17)
            monolithic = execute_plan(plan, db)
            profiler = RoundProfiler()
            streamed = execute_plan(
                plan, db, chunk_rows=chunk, profiler=profiler
            )
            _assert_parity(
                monolithic, streamed, (query.name, chunk)
            )
            if chunk is None:
                # chunk infinity degenerates to the monolithic path:
                # no per-block timings are ever recorded.
                assert not profiler.blocks
            else:
                assert profiler.blocks

    def test_pure_backend_ignores_the_knob(self):
        for query, plan in self._cases("pure"):
            db = matching_database(query, n=40, rng=17)
            monolithic = execute_plan(plan, db)
            profiler = RoundProfiler()
            streamed = execute_plan(
                plan, db, chunk_rows=5, profiler=profiler
            )
            _assert_parity(monolithic, streamed, query.name)
            assert not profiler.blocks  # streaming never engaged

    def test_chunk_rows_env_engages_streaming(self, monkeypatch):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        plan = compile_hypercube(query, p=8, backend="numpy")
        db = matching_database(query, n=50, rng=19)
        monolithic = execute_plan(plan, db)
        monkeypatch.setenv("REPRO_CHUNK_ROWS", "9")
        profiler = RoundProfiler()
        streamed = execute_plan(plan, db, profiler=profiler)
        _assert_parity(monolithic, streamed, "env knob")
        assert profiler.blocks


class TestServiceParity:
    """The chunk_rows knob through QueryService, per algorithm."""

    ALGORITHMS = (
        ("hypercube", {}),
        ("skewaware", {}),
        ("multiround", {}),
        ("partial", {"eps": Fraction(1, 4)}),
    )

    @pytest.fixture(scope="class")
    def database(self):
        return matching_database(cycle_query(3), n=60, rng=23)

    @pytest.mark.parametrize(
        "algorithm,overrides", ALGORITHMS, ids=[a for a, _ in ALGORITHMS]
    )
    @pytest.mark.parametrize("chunk", (1, 16, None))
    def test_parity_per_algorithm(
        self, triangle, database, algorithm, overrides, chunk
    ):
        monolithic = QueryService(database, p=8, backend="numpy")
        streamed = QueryService(
            database, p=8, backend="numpy", chunk_rows=chunk
        )
        try:
            expected = monolithic.execute(
                triangle, algorithm=algorithm, **overrides
            )
            actual = streamed.execute(
                triangle, algorithm=algorithm, **overrides
            )
            assert actual.answers == expected.answers
            assert actual.per_server == expected.per_server
            assert actual.algorithm == expected.algorithm
        finally:
            monolithic.close()
            streamed.close()

    def test_capacity_failure_is_bit_identical(self, triangle, database):
        failures = {}
        for chunk in (None, 4):
            service = QueryService(
                database,
                p=8,
                backend="numpy",
                capacity_c=0.001,
                enforce_capacity=True,
                chunk_rows=chunk,
            )
            try:
                with pytest.raises(CapacityExceeded) as info:
                    service.execute(triangle)
                failures[chunk] = info.value
                # The pooled simulator stays reusable after the
                # mid-stream abort: the next request fails identically
                # instead of tripping over a half-open round.
                with pytest.raises(CapacityExceeded) as again:
                    service.execute(triangle)
                assert again.value.worker == info.value.worker
            finally:
                service.close()
        monolithic, streamed = failures[None], failures[4]
        assert streamed.worker == monolithic.worker
        assert streamed.received_bits == monolithic.received_bits
        assert streamed.capacity_bits == monolithic.capacity_bits
        assert streamed.round_index == monolithic.round_index


class TestSessionParity:
    """The chunk_rows knob through the Session front door."""

    VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")

    def test_session_threads_the_knob(self):
        database = matching_database(self.VOCAB, n=50, rng=29)
        with connect(database, p=8, backend="numpy") as monolithic:
            expected = monolithic.query("S1(x,y), S2(y,z)").execute()
        with connect(
            database, p=8, backend="numpy", chunk_rows=8
        ) as streamed:
            assert streamed.service.chunk_rows == 8
            actual = streamed.query("S1(x,y), S2(y,z)").execute()
        assert actual.answers == expected.answers
        assert actual.per_server == expected.per_server


class TestParallelStreamingParity:
    """Streamed rounds on the real spawn pool: fan-out plus overlap."""

    @pytest.fixture(scope="class")
    def context(self):
        with ParallelContext(2, min_rows=0) as context:
            yield context

    def _cases(self):
        two_hop = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        chain = line_query(4)
        return [
            (
                two_hop,
                compile_hypercube(two_hop, p=8, backend="numpy"),
            ),
            (
                chain,
                compile_multiround(
                    build_plan(chain, Fraction(0)), p=8, backend="numpy"
                ),
            ),
        ]

    def test_parity_and_counters(self, context):
        for query, plan in self._cases():
            db = matching_database(query, n=400, rng=31)
            monolithic = execute_plan(plan, db)
            before = context.parallel_rounds
            profiler = RoundProfiler()
            streamed = execute_plan(
                plan,
                db,
                parallel=context,
                chunk_rows=64,
                profiler=profiler,
            )
            _assert_parity(monolithic, streamed, query.name)
            assert context.parallel_rounds > before
            assert not context.pool.broken
            assert profiler.blocks
            assert profiler.overlap_seconds >= 0.0

    def test_multiround_views_overlap_with_routing(self, context):
        # The pipelined path: a multi-round plan materialises round
        # r's views while round r+1 routes; the profiler's overlap
        # column records the concurrency.
        chain = line_query(5)
        plan = compile_multiround(
            build_plan(chain, Fraction(0)), p=8, backend="numpy"
        )
        db = matching_database(chain, n=300, rng=37)
        monolithic = execute_plan(plan, db)
        profiler = RoundProfiler()
        streamed = execute_plan(
            plan,
            db,
            parallel=context,
            chunk_rows=32,
            profiler=profiler,
        )
        _assert_parity(monolithic, streamed, "line5 overlap")
        if not context.pool.broken:
            assert profiler.overlap_seconds > 0.0

    def test_broken_pool_falls_back_bit_identically(self):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        plan = compile_hypercube(query, p=8, backend="numpy")
        db = matching_database(query, n=200, rng=41)
        monolithic = execute_plan(plan, db)
        with ParallelContext(2, min_rows=0) as context:
            context.pool.close()
            context.pool.broken = True
            streamed = execute_plan(
                plan, db, parallel=context, chunk_rows=16
            )
            _assert_parity(monolithic, streamed, "broken pool")
            assert context.parallel_rounds == 0
