"""Statement fan-out: multi-process sessions vs in-process, bit for bit."""

from __future__ import annotations

import threading
from fractions import Fraction

import pytest

from repro import connect
from repro.core.families import cycle_query
from repro.data.matching import matching_database
from repro.engine.parallel.fanout import FanoutBroken, SessionWorkerPool
from repro.engine.parallel.shm import segment_exists
from repro.mpc.simulator import CapacityExceeded

VOCAB = cycle_query(3)

#: Pairwise non-isomorphic statements: parity must not depend on the
#: plan cache's isomorphic-rebind order (see the fanout module
#: docstring), so each shape compiles its own plan.
STATEMENTS = (
    "S1(x,y), S2(y,z), S3(z,x)",
    "S1(x,y), S2(y,z)",
    "S1(x,y)",
    "S1(x,x)",
)

ROUTES = (
    ("hypercube", {}),
    ("skewaware", {}),
    ("multiround", {}),
    ("partial", {"eps": Fraction(1, 4), "allow_partial": True}),
)


def _database(n=60, rng=11):
    return matching_database(VOCAB, n=n, rng=rng)


@pytest.mark.parametrize("backend", ["numpy", "pure"])
class TestParity:
    @pytest.mark.parametrize(
        "algorithm,overrides", ROUTES, ids=[a for a, _ in ROUTES]
    )
    def test_every_planner_route(self, backend, algorithm, overrides):
        database = _database()
        with connect(database, p=8, backend=backend) as serial, connect(
            database, p=8, backend=backend, workers=2
        ) as fanned:
            assert fanned.fanout is not None and fanned.fanout.usable
            expected = serial.execute(
                STATEMENTS[0], algorithm=algorithm, **overrides
            )
            actual = fanned.execute(
                STATEMENTS[0], algorithm=algorithm, **overrides
            )
            assert actual.answers == expected.answers
            assert actual.per_server == expected.per_server
            assert actual.algorithm == expected.algorithm
            assert actual.version == expected.version
            assert fanned.fanout.queries == 1  # it really fanned out

    def test_statement_sequence(self, backend):
        database = _database()
        with connect(database, p=8, backend=backend) as serial, connect(
            database, p=8, backend=backend, workers=2
        ) as fanned:
            for text in STATEMENTS:
                expected = serial.execute(text)
                actual = fanned.execute(text)
                assert actual.answers == expected.answers, text
            assert fanned.fanout.queries == len(STATEMENTS)


class TestUpdates:
    def test_update_broadcast_keeps_parity(self):
        database = _database()
        with connect(database, p=8, backend="numpy") as serial, connect(
            database, p=8, backend="numpy", workers=2
        ) as fanned:
            rows = [(1, 2), (3, 4), (5, 6)]
            assert serial.update(inserts={"S1": rows}) == fanned.update(
                inserts={"S1": rows}
            )
            assert fanned.fanout.usable  # barrier update succeeded
            for text in STATEMENTS:
                expected = serial.execute(text)
                actual = fanned.execute(text)
                assert actual.answers == expected.answers, text
                assert actual.version == expected.version == 1

    def test_update_on_a_dead_pool_never_loses_the_parent_delta(self):
        database = _database()
        with connect(database, p=8, backend="numpy", workers=2) as session:
            for process in session.fanout._processes:
                process.kill()
                process.join(timeout=30)
            # The barrier cannot run, but the parent still applies.
            assert session.update(inserts={"S1": [(1, 2)]}) == 1
            assert session.version == 1
            assert not session.fanout.usable

    def test_broken_pool_apply_delta_runs_apply_parent_exactly_once(self):
        from repro.data.versioned import DatabaseDelta

        database = _database()
        with connect(database, p=8, backend="numpy", workers=2) as session:
            pool = session.fanout
            for process in pool._processes:
                process.kill()
                process.join(timeout=30)
            calls = []

            def apply_parent():
                calls.append(1)
                return 7

            delta = DatabaseDelta.of({"S1": [(1, 2)]}, None)
            assert pool.apply_delta(delta, apply_parent) == 7
            assert calls == [1]

    def test_update_divergence_marks_the_pool_broken(self):
        # apply_parent reporting a version the workers did not reach is
        # divergence: the parent keeps its delta, the pool stops
        # serving (and the barrier released every worker regardless).
        from repro.data.versioned import DatabaseDelta

        database = _database()
        with connect(database, p=8, backend="numpy", workers=2) as session:
            pool = session.fanout
            delta = DatabaseDelta.of({"S1": [(1, 2)]}, None)
            assert pool.apply_delta(delta, lambda: 999) == 999
            assert pool.broken and not pool.usable

    def test_capacity_exceeded_crosses_the_boundary(self):
        database = _database()
        options = dict(
            p=8,
            backend="numpy",
            enforce_capacity=True,
            capacity_c=1e-6,
            algorithm="hypercube",
        )
        with connect(database, **options) as serial, connect(
            database, workers=2, **options
        ) as fanned:
            with pytest.raises(CapacityExceeded) as local:
                serial.execute(STATEMENTS[0])
            with pytest.raises(CapacityExceeded) as remote:
                fanned.execute(STATEMENTS[0])
            assert remote.value.worker == local.value.worker
            assert remote.value.received_bits == local.value.received_bits
            assert remote.value.capacity_bits == local.value.capacity_bits
            assert remote.value.round_index == local.value.round_index
            # A capacity failure is an answer, not a worker death.
            assert fanned.fanout.usable


class TestFailure:
    def test_dead_worker_degrades_to_in_process(self):
        database = _database()
        with connect(database, p=8, backend="numpy") as serial, connect(
            database, p=8, backend="numpy", workers=2
        ) as fanned:
            expected = serial.execute(STATEMENTS[0])
            for process in fanned.fanout._processes:
                process.kill()
                process.join(timeout=30)
            # The session survives: the broken pool raises internally,
            # execution falls back, and the answer is still exact.
            actual = fanned.execute(STATEMENTS[0])
            assert actual.answers == expected.answers
            assert fanned.fanout is None or not fanned.fanout.usable

    def test_dead_pool_fallback_is_safe_from_many_threads(self):
        # The RPC server's dispatcher threads can all land in the
        # in-process fallback at once when the pool dies mid-serve;
        # the session's execution lock must keep them single-file.
        database = _database()
        with connect(database, p=8, backend="numpy") as serial, connect(
            database, p=8, backend="numpy", workers=2
        ) as fanned:
            expected = {
                text: serial.execute(text).answers for text in STATEMENTS
            }
            for process in fanned.fanout._processes:
                process.kill()
                process.join(timeout=30)
            results: dict[str, tuple] = {}
            errors: list[Exception] = []

            def run(text: str) -> None:
                try:
                    results[text] = fanned.execute(text).answers
                except Exception as error:  # noqa: BLE001 - asserted
                    errors.append(error)

            threads = [
                threading.Thread(target=run, args=(text,))
                for text in STATEMENTS * 2
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert results == expected

    def test_broken_pool_refuses_direct_use(self):
        database = _database()
        session = connect(database, p=8, backend="numpy", workers=2)
        try:
            pool = session.fanout
            for process in pool._processes:
                process.kill()
                process.join(timeout=30)
            with pytest.raises(FanoutBroken):
                pool.execute(VOCAB, None, None, False)
            with pytest.raises(FanoutBroken):
                pool.execute(VOCAB, None, None, False)  # stays broken
        finally:
            session.close()

    def test_query_errors_propagate_with_their_type(self):
        from repro.core.query import QueryError

        database = _database()
        with connect(database, p=8, backend="numpy", workers=2) as session:
            with pytest.raises(QueryError):
                session.execute("Nope(x,y)")
            assert session.fanout.usable  # a bad query is not a crash


class TestLifecycle:
    def test_close_unlinks_all_segments(self):
        database = _database()
        session = connect(database, p=8, backend="numpy", workers=2)
        names = list(session.fanout.segment_names)
        assert names  # the snapshot went through shared memory
        session.execute(STATEMENTS[0])
        session.close()
        assert session.fanout is None
        assert not any(segment_exists(name) for name in names)

    def test_pool_requires_two_workers(self):
        database = _database()
        with connect(database, p=8, backend="numpy") as session:
            with pytest.raises(ValueError):
                SessionWorkerPool(session.database, {}, workers=1)

    def test_worker_stats_report_per_worker_sessions(self):
        database = _database()
        with connect(database, p=8, backend="numpy", workers=2) as session:
            session.execute(STATEMENTS[0])
            session.execute(STATEMENTS[1])
            stats = session.fanout.worker_stats()
            assert len(stats) == 2
            assert sum(s.executions for s in stats) == 2
