"""Admission control: the bounded queue and per-client token buckets."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.admission import (
    AdmissionQueue,
    ServerOverloaded,
    TokenBucket,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestAdmissionQueue:
    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(1, max_queue=-1)

    def test_admits_up_to_max_inflight(self):
        async def body():
            queue = AdmissionQueue(2, max_queue=0)
            await queue.acquire()
            await queue.acquire()
            assert queue.inflight == 2
            with pytest.raises(ServerOverloaded) as excinfo:
                await queue.acquire()
            assert excinfo.value.reason == "queue_full"
            assert queue.stats.admitted == 2
            assert queue.stats.shed == 1
            queue.release()
            await queue.acquire()  # a freed slot admits again
            assert queue.stats.admitted == 3

        run(body())

    def test_waiters_are_granted_fifo(self):
        async def body():
            queue = AdmissionQueue(1, max_queue=2)
            await queue.acquire()
            order = []

            async def waiter(tag):
                await queue.acquire()
                order.append(tag)

            first = asyncio.create_task(waiter("first"))
            await asyncio.sleep(0)
            second = asyncio.create_task(waiter("second"))
            await asyncio.sleep(0)
            assert queue.queued == 2
            with pytest.raises(ServerOverloaded):
                await queue.acquire()  # queue full: third waiter shed
            queue.release()
            await first
            assert order == ["first"]
            queue.release()
            await second
            assert order == ["first", "second"]
            assert queue.inflight == 1  # hand-offs never double-count
            assert queue.stats.peak_queued == 2

        run(body())

    def test_cancelled_waiter_leaves_without_a_slot(self):
        async def body():
            queue = AdmissionQueue(1, max_queue=2)
            await queue.acquire()

            doomed = asyncio.create_task(queue.acquire())
            survivor_done = asyncio.Event()

            async def survivor():
                await queue.acquire()
                survivor_done.set()

            await asyncio.sleep(0)
            alive = asyncio.create_task(survivor())
            await asyncio.sleep(0)
            assert queue.queued == 2
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert queue.queued == 1
            # The freed slot goes to the survivor, not the ghost.
            queue.release()
            await asyncio.wait_for(survivor_done.wait(), timeout=5)
            await alive
            assert queue.inflight == 1

        run(body())

    def test_cancellation_racing_a_grant_passes_the_slot_on(self):
        async def body():
            queue = AdmissionQueue(1, max_queue=2)
            await queue.acquire()

            doomed = asyncio.create_task(queue.acquire())
            granted = asyncio.Event()

            async def survivor():
                await queue.acquire()
                granted.set()

            await asyncio.sleep(0)
            alive = asyncio.create_task(survivor())
            await asyncio.sleep(0)
            # Grant the doomed waiter's future, then cancel it before
            # its coroutine resumes: the slot must pass to the
            # survivor instead of leaking.
            queue.release()
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await asyncio.wait_for(granted.wait(), timeout=5)
            await alive
            assert queue.inflight == 1
            assert queue.queued == 0

        run(body())

    def test_release_with_no_waiters_frees_the_slot(self):
        async def body():
            queue = AdmissionQueue(1, max_queue=0)
            await queue.acquire()
            queue.release()
            assert queue.inflight == 0

        run(body())


class TestTokenBucket:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0.5)

    def test_burst_then_refill_on_a_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent
        # Half a second refills one token at 2/s.
        now[0] = 0.5
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_reports_the_refill_time(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=lambda: now[0])
        assert bucket.retry_after_ms() == 0.0
        assert bucket.try_acquire()
        # One token at 2/s is 500 ms away.
        assert bucket.retry_after_ms() == pytest.approx(500.0)
        now[0] = 0.25
        assert bucket.retry_after_ms() == pytest.approx(250.0)

    def test_bucket_never_exceeds_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: now[0])
        now[0] = 100.0  # a long idle must not bank extra tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_overloaded_error_carries_the_hint(self):
        error = ServerOverloaded("quota", 125.0)
        assert error.reason == "quota"
        assert error.retry_after_ms == 125.0
        assert "125 ms" in str(error)

    def test_overloaded_error_pickles(self):
        import pickle

        clone = pickle.loads(pickle.dumps(ServerOverloaded("queue_full")))
        assert clone.reason == "queue_full"
        assert clone.retry_after_ms == 0.0
