"""RPC hardening on the wire: timeouts, shedding, broken clients."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import connect
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.serve.faults import DISCONNECT_ENV, ROUND_DELAY_ENV
from repro.serve.rpc import RpcServer

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")
PATH = "S1(x,y), S2(y,z)"


def _session(n=60, **kwargs):
    return connect(matching_database(VOCAB, n=n, rng=7), p=8, **kwargs)


class _Client:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, server):
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_text(self, text: str) -> None:
        self.writer.write(text.encode() + b"\n")
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        assert line, "server closed the connection"
        return json.loads(line)

    async def call(self, request: dict) -> dict:
        await self.send_text(json.dumps(request))
        return await self.recv()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def rpc_test(coroutine):
    return asyncio.run(coroutine)


class TestMalformedFrames:
    def test_connection_survives_a_malformed_frame(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    await client.send_text("this is not json {")
                    response = await client.recv()
                    assert not response["ok"]
                    assert "invalid json" in response["error"]
                    # Same connection, next frame: business as usual.
                    response = await client.call(
                        {"id": 2, "op": "query", "q": PATH}
                    )
                    assert response["ok"] and response["count"] == 60
                    assert server.stats.errors == 1
                    await client.close()
            finally:
                session.close()

        rpc_test(body())


class TestIdleTimeout:
    def test_idle_connection_is_notified_and_closed(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(
                    session, idle_timeout=0.2
                ) as server:
                    client = await _Client.open(server)
                    # A request inside the window works.
                    assert (await client.call({"op": "ping"}))["pong"]
                    # Then silence: the server sends one IdleTimeout
                    # notice and closes.
                    notice = await client.recv()
                    assert notice["error_type"] == "IdleTimeout"
                    assert (
                        await asyncio.wait_for(
                            client.reader.readline(), timeout=5
                        )
                        == b""
                    )
                    assert server.stats.idle_timeouts == 1
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_no_timeout_by_default(self):
        session = _session()
        server = RpcServer(session)
        assert server.idle_timeout is None
        session.close()
        with pytest.raises(ValueError):
            RpcServer(_session(), idle_timeout=0)


class TestWireDeadlines:
    def test_deadline_error_is_structured(self, monkeypatch):
        monkeypatch.setenv(ROUND_DELAY_ENV, "80")

        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    response = await client.call(
                        {
                            "id": 9,
                            "op": "query",
                            "q": PATH,
                            "deadline_ms": 10,
                        }
                    )
                    assert not response["ok"]
                    assert response["id"] == 9
                    assert response["error_type"] == "DeadlineExceeded"
                    assert response["where"] == "between rounds"
                    assert response["budget_ms"] == 10.0
                    assert response["elapsed_ms"] >= 10.0
                    assert server.stats.deadline_exceeded == 1
                    # The connection and the server both survive.
                    monkeypatch.delenv(ROUND_DELAY_ENV)
                    response = await client.call(
                        {"id": 10, "op": "query", "q": PATH}
                    )
                    assert response["ok"] and response["count"] == 60
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_invalid_deadline_is_rejected_upfront(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    for bad in (0, -5, "fast", True):
                        response = await client.call(
                            {
                                "op": "query",
                                "q": PATH,
                                "deadline_ms": bad,
                            }
                        )
                        assert not response["ok"]
                        assert "deadline_ms" in response["error"]
                    assert server.session.stats.requests == 0
                    await client.close()
            finally:
                session.close()

        rpc_test(body())


class TestAdmissionOnTheWire:
    def test_excess_load_is_shed_with_retry_hint(self, monkeypatch):
        # A slow execution (injected round delay) holds the single
        # admission slot; with max_queue=0 the concurrent second
        # query is shed immediately.
        monkeypatch.setenv(ROUND_DELAY_ENV, "400")

        async def body():
            session = _session(result_cache_size=0)
            try:
                async with RpcServer(
                    session, max_inflight=1, max_queue=0
                ) as server:
                    slow = await _Client.open(server)
                    fast = await _Client.open(server)
                    await slow.send_text(
                        json.dumps({"id": 1, "op": "query", "q": PATH})
                    )
                    await asyncio.sleep(0.1)  # the slot is now held
                    shed = await fast.call(
                        {"id": 2, "op": "query", "q": "S1(a,b)"}
                    )
                    assert not shed["ok"]
                    assert shed["error_type"] == "ServerOverloaded"
                    assert shed["reason"] == "queue_full"
                    assert "retry_after_ms" in shed
                    admitted = await slow.recv()
                    assert admitted["ok"] and admitted["id"] == 1
                    assert server.stats.shed_overload == 1
                    stats = (await fast.call({"op": "stats"}))["admission"]
                    assert stats["enabled"]
                    assert stats["admitted"] == 1
                    assert stats["shed"] == 1
                    assert stats["inflight"] == 0  # all slots returned
                    await slow.close()
                    await fast.close()
            finally:
                session.close()

        rpc_test(body())

    def test_quota_is_shared_across_connections_by_client_id(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(
                    session, quota_rps=0.001, quota_burst=2
                ) as server:
                    first = await _Client.open(server)
                    second = await _Client.open(server)
                    for client in (first, second):
                        response = await client.call(
                            {
                                "op": "query",
                                "q": PATH,
                                "client_id": "tenant-1",
                            }
                        )
                        assert response["ok"]
                    # Burst of 2 spent: the third request is shed no
                    # matter which connection carries it.
                    shed = await first.call(
                        {
                            "op": "query",
                            "q": PATH,
                            "client_id": "tenant-1",
                        }
                    )
                    assert not shed["ok"]
                    assert shed["reason"] == "quota"
                    assert shed["retry_after_ms"] > 0
                    # A different tenant still gets in.
                    other = await second.call(
                        {
                            "op": "query",
                            "q": PATH,
                            "client_id": "tenant-2",
                        }
                    )
                    assert other["ok"]
                    # ping and stats stay exempt under overload.
                    assert (await first.call({"op": "ping"}))["pong"]
                    stats = await first.call({"op": "stats"})
                    assert stats["rpc"]["shed_quota"] == 1
                    assert stats["admission"]["quota_clients"] == 2
                    await first.close()
                    await second.close()
            finally:
                session.close()

        rpc_test(body())

    def test_per_connection_quota_without_client_id(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(
                    session, quota_rps=0.001, quota_burst=1
                ) as server:
                    first = await _Client.open(server)
                    assert (
                        await first.call({"op": "query", "q": PATH})
                    )["ok"]
                    shed = await first.call({"op": "query", "q": PATH})
                    assert shed["reason"] == "quota"
                    # A fresh connection is a fresh bucket.
                    second = await _Client.open(server)
                    assert (
                        await second.call({"op": "query", "q": PATH})
                    )["ok"]
                    await first.close()
                    await second.close()
            finally:
                session.close()

        rpc_test(body())


class TestStreaming:
    def test_batches_arrive_incrementally_with_a_final_summary(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    await client.send_text(
                        json.dumps(
                            {
                                "id": 5,
                                "op": "query",
                                "q": PATH,
                                "stream": True,
                                "batch": 16,
                            }
                        )
                    )
                    rows = []
                    batches = 0
                    while True:
                        line = await client.recv()
                        if "batch" in line:
                            assert line["id"] == 5
                            assert len(line["batch"]) <= 16
                            rows.extend(line["batch"])
                            batches += 1
                            continue
                        summary = line
                        break
                    assert summary["ok"] and summary["done"]
                    assert summary["batches"] == batches == 4
                    assert summary["count"] == len(rows) == 60
                    assert "answers" not in summary
                    assert server.stats.streamed_batches == 4
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_rejects_non_positive_batch(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    response = await client.call(
                        {
                            "op": "query",
                            "q": PATH,
                            "stream": True,
                            "batch": 0,
                        }
                    )
                    assert not response["ok"]
                    assert "batch" in response["error"]
                    # Rejected before execution, not after.
                    assert server.session.stats.requests == 0
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_mid_stream_disconnect_is_counted_and_survived(
        self, monkeypatch
    ):
        # The injected fault aborts the connection after 2 batch
        # lines -- exactly what a client vanishing mid-stream looks
        # like from the server.
        monkeypatch.setenv(DISCONNECT_ENV, "2")

        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    await client.send_text(
                        json.dumps(
                            {
                                "id": 7,
                                "op": "query",
                                "q": PATH,
                                "stream": True,
                                "batch": 16,
                            }
                        )
                    )
                    received = 0
                    while True:
                        line = await asyncio.wait_for(
                            client.reader.readline(), timeout=10
                        )
                        if not line:
                            break  # connection cut mid-stream
                        if "batch" in json.loads(line):
                            received += 1
                    assert received <= 2
                    assert server.stats.aborted_streams == 1
                    await client.close()

                    # The server keeps serving new connections.
                    monkeypatch.delenv(DISCONNECT_ENV)
                    survivor = await _Client.open(server)
                    response = await survivor.call(
                        {"op": "query", "q": PATH}
                    )
                    assert response["ok"] and response["count"] == 60
                    await survivor.close()
            finally:
                session.close()

        rpc_test(body())
