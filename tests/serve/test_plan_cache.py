"""Unit tests for the plan cache: canonicalization, rebinds, LRU."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.hypercube import compile_hypercube
from repro.core.query import parse_query
from repro.serve.cache import PlanCache


def _params(eps=None, p=8, backend="pure"):
    return ("hypercube", eps, p, backend, 0, 4.0, False)


def _compiler(p=8, backend="pure"):
    calls = []

    def compile_(query):
        calls.append(query)
        return compile_hypercube(query, p=p, backend=backend)

    return compile_, calls


class TestExactHits:
    def test_second_lookup_hits(self):
        cache = PlanCache()
        compile_, calls = _compiler()
        query = parse_query("S1(x,y), S2(y,z)")
        plan1, rebind1, hit1 = cache.get_or_compile(
            query, _params(), compile_
        )
        plan2, rebind2, hit2 = cache.get_or_compile(
            query, _params(), compile_
        )
        assert not hit1 and hit2
        assert plan1 is plan2
        assert len(calls) == 1
        assert rebind1.is_identity and rebind2.is_identity

    def test_stats_count_hits_and_misses(self):
        cache = PlanCache()
        compile_, _ = _compiler()
        query = parse_query("S1(x,y), S2(y,z)")
        cache.get_or_compile(query, _params(), compile_)
        cache.get_or_compile(query, _params(), compile_)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5


class TestIsomorphicHits:
    def test_isomorphic_query_shares_the_plan(self):
        cache = PlanCache()
        compile_, calls = _compiler()
        canonical = parse_query("S1(x,y), S2(y,z)")
        variant = parse_query("S2(a,b), S1(b,c)")
        plan1, _, _ = cache.get_or_compile(canonical, _params(), compile_)
        plan2, rebind, hit = cache.get_or_compile(
            variant, _params(), compile_
        )
        assert hit
        assert plan1 is plan2
        assert len(calls) == 1
        assert cache.stats.isomorphic_hits == 1
        assert not rebind.is_identity

    def test_rebind_maps_plan_relations_to_request_relations(self):
        cache = PlanCache()
        compile_, _ = _compiler()
        canonical = parse_query("S1(x,y), S2(y,z)")
        variant = parse_query("S2(a,b), S1(b,c)")
        cache.get_or_compile(canonical, _params(), compile_)
        _, rebind, _ = cache.get_or_compile(variant, _params(), compile_)
        # The variant's S2 plays the canonical S1's role (first hop).
        assert dict(rebind.relation_map) == {"S1": "S2", "S2": "S1"}

    def test_rebind_permutes_answers_into_request_head_order(self):
        cache = PlanCache()
        compile_, _ = _compiler()
        canonical = parse_query("S1(x,y), S2(y,z)")
        variant = parse_query("q(c,b,a) = S2(a,b), S1(b,c)")
        cache.get_or_compile(canonical, _params(), compile_)
        _, rebind, hit = cache.get_or_compile(variant, _params(), compile_)
        assert hit
        # Plan answers are (x, y, z) = variant's (a, b, c); the
        # variant's head order is (c, b, a).
        assert rebind.remap_answers(((1, 2, 3),)) == ((3, 2, 1),)

    def test_isomorphic_variant_becomes_exact_after_first_probe(self):
        cache = PlanCache()
        compile_, _ = _compiler()
        cache.get_or_compile(
            parse_query("S1(x,y), S2(y,z)"), _params(), compile_
        )
        variant = parse_query("S2(a,b), S1(b,c)")
        cache.get_or_compile(variant, _params(), compile_)
        cache.get_or_compile(variant, _params(), compile_)
        assert cache.stats.isomorphic_hits == 1
        assert cache.stats.hits == 1

    def test_non_isomorphic_same_fingerprint_compiles(self):
        cache = PlanCache()
        compile_, calls = _compiler()
        cache.get_or_compile(
            parse_query("S1(x,y), S2(y,z)"), _params(), compile_
        )
        # Same atom/variable/arity counts and degree multiset cannot
        # happen for a structurally different 2-chain, so use a
        # different shape entirely: it must compile fresh.
        cache.get_or_compile(
            parse_query("S1(x,y), S2(x,y)"), _params(), compile_
        )
        assert len(calls) == 2


class TestParameterSensitivity:
    def test_miss_on_changed_eps_p_backend(self):
        cache = PlanCache()
        query = parse_query("S1(x,y), S2(y,z)")
        compile_, calls = _compiler()
        cache.get_or_compile(query, _params(), compile_)
        cache.get_or_compile(query, _params(eps=Fraction(1, 2)), compile_)
        compile_p16, calls_p16 = _compiler(p=16)
        cache.get_or_compile(query, _params(p=16), compile_p16)
        compile_np, calls_np = _compiler(backend="pure")
        cache.get_or_compile(query, _params(backend="numpy"), compile_np)
        assert len(calls) == 2
        assert len(calls_p16) == 1
        assert len(calls_np) == 1
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0

    def test_isomorphism_never_crosses_parameters(self):
        cache = PlanCache()
        compile_, calls = _compiler()
        cache.get_or_compile(
            parse_query("S1(x,y), S2(y,z)"), _params(p=8), compile_
        )
        cache.get_or_compile(
            parse_query("S2(a,b), S1(b,c)"), _params(p=16), compile_
        )
        assert len(calls) == 2
        assert cache.stats.isomorphic_hits == 0


class TestEviction:
    def test_lru_eviction_beyond_maxsize(self):
        cache = PlanCache(maxsize=2)
        compile_, calls = _compiler()
        queries = [
            parse_query("S1(x,y)"),
            parse_query("S1(x,y), S2(y,z)"),
            parse_query("S1(x,y), S2(y,z), S3(z,w)"),
        ]
        for query in queries:
            cache.get_or_compile(query, _params(), compile_)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry recompiles.
        cache.get_or_compile(queries[0], _params(), compile_)
        assert len(calls) == 4

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestBucketHygiene:
    def test_buckets_shrink_with_evictions(self):
        cache = PlanCache(maxsize=1)
        compile_, _ = _compiler()
        cache.get_or_compile(parse_query("S1(x,y)"), _params(), compile_)
        cache.get_or_compile(
            parse_query("S1(x,y), S2(y,z)"), _params(), compile_
        )
        cache.get_or_compile(
            parse_query("S1(x,y), S2(y,z), S3(z,w)"), _params(), compile_
        )
        # Every eviction cleans its bucket, so the index never holds
        # more buckets than live canonical entries.
        assert len(cache._buckets) == 1
