"""The REPRO_FAULT_* injection knobs: parsing and end-to-end effect."""

from __future__ import annotations

import time

import pytest

from repro import connect
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.serve import faults

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")
PATH = "S1(x,y), S2(y,z)"


def _database(n=60):
    return matching_database(VOCAB, n=n, rng=7)


class TestKnobParsing:
    def test_everything_off_when_unset(self, monkeypatch):
        for name in faults.FAULT_ENVS:
            monkeypatch.delenv(name, raising=False)
        assert faults.round_delay_seconds() == 0.0
        assert faults.block_delay_seconds() == 0.0
        assert faults.worker_death_after() is None
        assert faults.disconnect_after_batches() is None
        config = faults.active_faults()
        assert not config.any_active

    def test_blank_values_count_as_unset(self, monkeypatch):
        monkeypatch.setenv(faults.ROUND_DELAY_ENV, "  ")
        monkeypatch.setenv(faults.WORKER_DEATH_ENV, "")
        assert faults.round_delay_seconds() == 0.0
        assert faults.worker_death_after() is None

    def test_delays_convert_ms_to_seconds(self, monkeypatch):
        monkeypatch.setenv(faults.ROUND_DELAY_ENV, "250")
        monkeypatch.setenv(faults.BLOCK_DELAY_ENV, "1.5")
        assert faults.round_delay_seconds() == 0.25
        assert faults.block_delay_seconds() == 0.0015
        config = faults.active_faults()
        assert config.any_active
        assert config.round_delay_ms == 250.0

    def test_malformed_values_raise_instead_of_disabling(
        self, monkeypatch
    ):
        monkeypatch.setenv(faults.ROUND_DELAY_ENV, "soon")
        with pytest.raises(ValueError):
            faults.round_delay_seconds()
        monkeypatch.setenv(faults.ROUND_DELAY_ENV, "-5")
        with pytest.raises(ValueError):
            faults.round_delay_seconds()
        monkeypatch.setenv(faults.WORKER_DEATH_ENV, "0")
        with pytest.raises(ValueError):
            faults.worker_death_after()
        monkeypatch.setenv(faults.WORKER_DEATH_ENV, "two")
        with pytest.raises(ValueError):
            faults.worker_death_after()

    def test_inject_round_delay_sleeps_only_when_set(self):
        start = time.perf_counter()
        faults.inject_round_delay(0.0)
        assert time.perf_counter() - start < 0.05
        start = time.perf_counter()
        faults.inject_round_delay(0.02)
        assert time.perf_counter() - start >= 0.02


class TestInjectedDelays:
    def test_round_delay_slows_every_execution(self, monkeypatch):
        session = connect(_database(), p=8, result_cache_size=0)
        try:
            start = time.perf_counter()
            baseline = session.execute(PATH)
            unloaded = time.perf_counter() - start

            monkeypatch.setenv(faults.ROUND_DELAY_ENV, "80")
            start = time.perf_counter()
            delayed = session.execute(PATH)
            slowed = time.perf_counter() - start
            assert slowed >= 0.08
            assert slowed > unloaded
            # The fault only injects latency; answers are untouched.
            assert delayed.answers == baseline.answers
        finally:
            session.close()

    def test_block_delay_applies_per_streamed_block(self, monkeypatch):
        pytest.importorskip("numpy")
        # n=60 rows in blocks of 15 is >= 4 blocks per step; at 20 ms
        # each the execution visibly slows while staying correct.
        session = connect(
            _database(),
            p=8,
            backend="numpy",
            chunk_rows=15,
            result_cache_size=0,
        )
        try:
            baseline = session.execute(PATH)
            monkeypatch.setenv(faults.BLOCK_DELAY_ENV, "20")
            start = time.perf_counter()
            delayed = session.execute(PATH)
            assert time.perf_counter() - start >= 0.08
            assert delayed.answers == baseline.answers
        finally:
            session.close()


class TestWorkerDeath:
    def test_worker_death_degrades_to_in_process(self, monkeypatch):
        # The fan-out worker kills itself (os._exit, as an OOM killer
        # would) before answering its first query.  The parent must
        # mark the pool broken, fall back in-process, and still answer
        # correctly -- and stay degraded for later statements.
        monkeypatch.setenv(faults.WORKER_DEATH_ENV, "1")
        database = _database()
        with connect(database, p=8) as serial:
            expected = serial.execute(PATH)
        with connect(database, p=8, workers=2) as fanned:
            if fanned.fanout is None or not fanned.fanout.usable:
                pytest.skip("no usable fan-out pool on this platform")
            result = fanned.execute(PATH)
            assert result.answers == expected.answers
            assert not fanned.fanout.usable  # pool marked broken
            assert fanned.fanout.alive_workers < fanned.fanout.workers
            # Still serving (in-process) after the death.
            again = fanned.execute(PATH)
            assert again.answers == expected.answers

    def test_worker_survives_until_the_nth_query(self, monkeypatch):
        monkeypatch.setenv(faults.WORKER_DEATH_ENV, "3")
        database = _database()
        with connect(database, p=8) as serial:
            expected = serial.execute(PATH)
        with connect(database, p=8, workers=2) as fanned:
            if fanned.fanout is None or not fanned.fanout.usable:
                pytest.skip("no usable fan-out pool on this platform")
            # Each worker dies on *its own* third query; serial
            # statements keep the pool alive until some worker has
            # handled three.
            survived = 0
            while fanned.fanout.usable and survived < 10:
                assert fanned.execute(PATH).answers == expected.answers
                survived += 1
            assert not fanned.fanout.usable
            assert 3 <= survived <= 6  # died on a worker's 3rd query


class TestPoolShutdown:
    def test_join_timeout_is_validated(self):
        from repro.engine.parallel.fanout import SessionWorkerPool

        with pytest.raises(ValueError):
            SessionWorkerPool(
                _database(), {"p": 8}, workers=1, join_timeout=0
            )

    def test_clean_close_kills_no_stragglers(self):
        session = connect(_database(), p=8, workers=2)
        try:
            if session.fanout is None or not session.fanout.usable:
                pytest.skip("no usable fan-out pool on this platform")
            fanout = session.fanout
        finally:
            session.close()
        assert fanout.killed_stragglers == 0
