"""Incremental view maintenance: parity, fallbacks, failure modes.

The acceptance bar of the subsystem: a request served by a delta
merge is *bit-identical* to the full re-execution it replaced --
answers, per-server loads, per-round statistics, view sizes, and
``CapacityExceeded`` behaviour -- across algorithms, backends and
delta shapes.  Everything the merge cannot guarantee that for falls
back to the full path, for a named reason.
"""

from __future__ import annotations

import pytest

from repro.backend import numpy_available
from repro.core.query import parse_query
from repro.data.columnar import ColumnarRelation
from repro.data.matching import matching_database
from repro.data.versioned import (
    DELTA_HISTORY_LIMIT,
    DatabaseDelta,
    VersionedDatabase,
)
from repro.engine.deadline import Deadline, DeadlineExceeded
from repro.mpc.simulator import CapacityExceeded
from repro.serve import QueryService
from repro.serve.faults import WORKER_DEATH_ENV

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")

TRIANGLE = "S1(x,y), S2(y,z), S3(z,x)"
TWO_HOP = "S1(x,y), S2(y,z)"


def _database(n=40, rng=7):
    return matching_database(VOCAB, n=n, rng=rng)


def _pair(backend, algorithm="hypercube", n=40, rng=7, **kwargs):
    """Two services over identical data: IVM on, IVM off (control)."""
    served = QueryService(
        _database(n=n, rng=rng),
        p=8,
        backend=backend,
        algorithm=algorithm,
        **kwargs,
    )
    control = QueryService(
        _database(n=n, rng=rng),
        p=8,
        backend=backend,
        algorithm=algorithm,
        ivm=False,
        **kwargs,
    )
    return served, control


def _fresh_rows(service, relation, count, avoid=()):
    """``count`` absent rows of ``relation`` within the domain."""
    present = set(service.database[relation].rows()) | set(avoid)
    domain = service.database.domain_size
    rows = []
    for a in range(1, domain + 1):
        for b in range(1, domain + 1):
            if (a, b) not in present:
                rows.append((a, b))
                if len(rows) == count:
                    return rows
    raise AssertionError("domain exhausted")


def _assert_parity(served, control):
    assert served.answers == control.answers
    assert served.per_server == control.per_server
    assert served.report.input_bits == control.report.input_bits
    assert len(served.report.rounds) == len(control.report.rounds)
    for mine, theirs in zip(served.report.rounds, control.report.rounds):
        assert mine.round_index == theirs.round_index
        assert mine.received_bits == theirs.received_bits
        assert mine.received_tuples == theirs.received_tuples
        assert mine.capacity_bits == theirs.capacity_bits
    assert served.view_sizes == control.view_sizes


def _apply_both(served, control, **delta):
    version = served.update(**delta)
    assert control.update(**delta) == version
    return version


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["hypercube", "multiround"])
class TestMergeParity:
    """Merged answers are bit-identical to full re-execution."""

    def _prime(self, backend, algorithm, query=TRIANGLE):
        served, control = _pair(backend, algorithm)
        _assert_parity(
            served.execute(query), control.execute(query)
        )
        return served, control

    def test_insert_only_delta(self, backend, algorithm):
        served, control = self._prime(backend, algorithm)
        rows = _fresh_rows(served, "S1", 3)
        _apply_both(served, control, inserts={"S1": rows})
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_delete_only_delta(self, backend, algorithm):
        served, control = self._prime(backend, algorithm)
        victims = list(served.database["S2"].rows())[:4]
        _apply_both(served, control, deletes={"S2": victims})
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_mixed_delta_across_relations(self, backend, algorithm):
        served, control = self._prime(backend, algorithm)
        rows = _fresh_rows(served, "S1", 2)
        victims = list(served.database["S3"].rows())[:2]
        _apply_both(
            served,
            control,
            inserts={"S1": rows},
            deletes={"S3": victims},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_consecutive_deltas_merge_cumulatively(
        self, backend, algorithm
    ):
        served, control = self._prime(backend, algorithm)
        for step in range(3):
            rows = _fresh_rows(served, "S1", 1)
            _apply_both(served, control, inserts={"S1": rows})
            mine = served.execute(TRIANGLE)
            assert mine.ivm == "merged"
            _assert_parity(mine, control.execute(TRIANGLE))
        assert served.stats.ivm_hits == 3
        assert served.stats.ivm_fallbacks == 0

    def test_merge_skipping_versions(self, backend, algorithm):
        # Two deltas, no execution in between: one composed merge.
        served, control = self._prime(backend, algorithm)
        rows = _fresh_rows(served, "S1", 2)
        _apply_both(served, control, inserts={"S1": rows})
        _apply_both(served, control, deletes={"S1": rows[:1]})
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_merged_result_is_cached(self, backend, algorithm):
        served, control = self._prime(backend, algorithm)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        first = served.execute(TRIANGLE)
        repeat = served.execute(TRIANGLE)
        assert first.ivm == "merged" and not first.result_hit
        assert repeat.result_hit and repeat.ivm is None
        assert repeat.answers == first.answers


@pytest.mark.parametrize("backend", BACKENDS)
class TestFallbacks:
    """Named reasons; the full path still answers correctly."""

    def test_skew_aware_plans_fall_back(self, backend):
        served, control = _pair(backend, algorithm="skewaware")
        served.execute(TWO_HOP)
        control.execute(TWO_HOP)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TWO_HOP)
        assert mine.ivm == "heavy-binding"
        assert served.stats.ivm_fallbacks == 1
        _assert_parity(mine, control.execute(TWO_HOP))

    def test_delta_fraction_gate(self, backend):
        served, control = _pair(
            backend, ivm_max_delta_fraction=0.0
        )
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "delta-too-large"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_domain_growth_falls_back(self, backend):
        served, control = _pair(backend)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        grown = served.database.domain_size + 50
        _apply_both(served, control, inserts={"S1": [(grown, 1)]})
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "bits-changed"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_history_gap_discards_state(self, backend):
        served, _ = _pair(backend)
        served.execute(TRIANGLE)
        assert served.ivm_retained_states == 1
        for _ in range(DELTA_HISTORY_LIMIT + 2):
            served.apply_delta(DatabaseDelta.of())
        # Empty deltas fast-forward instead of gapping; force a gap
        # with effective deltas beyond the history window.
        for step in range(DELTA_HISTORY_LIMIT + 2):
            served.update(inserts={"S1": _fresh_rows(served, "S1", 1)})
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "history-gap"
        assert served.ivm.fallback_reasons["history-gap"] == 1
        # The gapped state was freed, and the full execution that
        # answered re-captured fresh state at the current version.
        served.update(inserts={"S1": _fresh_rows(served, "S1", 1)})
        assert served.execute(TRIANGLE).ivm == "merged"

    def test_worker_death_drill_degrades_cleanly(
        self, backend, monkeypatch
    ):
        served, control = _pair(backend)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 2)},
        )
        monkeypatch.setenv(WORKER_DEATH_ENV, "1")
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "faults-active"
        _assert_parity(mine, control.execute(TRIANGLE))
        # Drill over: the next delta merges again.
        monkeypatch.delenv(WORKER_DEATH_ENV)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_byte_budget_rejects_capture(self, backend):
        served, control = _pair(backend, ivm_max_bytes=1)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        assert served.ivm_retained_states == 0
        assert served.ivm_retained_bytes == 0
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "no-retained-state"
        _assert_parity(mine, control.execute(TRIANGLE))

    def test_ivm_disabled_reports_nothing(self, backend):
        service = QueryService(_database(), p=8, backend=backend, ivm=False)
        service.execute(TRIANGLE)
        service.update(inserts={"S1": _fresh_rows(service, "S1", 1)})
        result = service.execute(TRIANGLE)
        assert result.ivm is None
        assert service.ivm is None
        assert service.ivm_retained_bytes == 0
        assert service.stats.ivm_hits == 0

    @pytest.mark.skipif(
        not numpy_available(), reason="chunked routing is numpy-only"
    )
    def test_chunked_execution_is_not_captured(self, backend):
        if backend != "numpy":
            pytest.skip("chunked routing is numpy-only")
        served, control = _pair(backend, chunk_rows=8)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        assert served.ivm_retained_states == 0
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "no-retained-state"
        _assert_parity(mine, control.execute(TRIANGLE))


def _skewed_database(backend, extra=()):
    # All the join traffic concentrates on y=1's worker; the ballast
    # rows (y in 2..4, joining nothing) land elsewhere, so capacity
    # (a function of *total* input) sits above the hot worker's load
    # until a skewed insert pushes it over.
    ballast = [(5 + j % 3, 30 + j) for j in range(16)]
    rows_s1 = [(i, 1) for i in range(1, 17)] + list(extra)
    rows_s2 = [(1, i) for i in range(1, 17)] + ballast
    return VersionedDatabase(
        {
            "S1": ColumnarRelation.from_rows(
                "S1", rows_s1, domain_size=64, backend=backend
            ),
            "S2": ColumnarRelation.from_rows(
                "S2", rows_s2, domain_size=64, backend=backend
            ),
        },
        backend=backend,
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestCapacityParity:
    """A merged overflow is the identical CapacityExceeded."""

    def _pair(self, backend, capacity_c):
        common = dict(
            p=4,
            backend=backend,
            capacity_c=capacity_c,
            enforce_capacity=True,
        )
        served = QueryService(_skewed_database(backend), **common)
        control = QueryService(
            _skewed_database(backend), ivm=False, **common
        )
        return served, control

    SKEW = tuple((20 + i, 1) for i in range(4))

    def _calibrate(self, backend):
        """A capacity constant the base data fits under but the skew
        insert overflows: probe both datasets unenforced and place
        the ceiling between their peak-load-to-capacity ratios."""
        ratios = []
        for extra in ((), self.SKEW):
            probe = QueryService(
                _skewed_database(backend, extra=extra),
                p=4,
                backend=backend,
                enforce_capacity=False,
            )
            stats = probe.execute(TWO_HOP).report.rounds[0]
            ratios.append(max(stats.received_bits) / stats.capacity_bits)
        base_ratio, skew_ratio = ratios
        assert skew_ratio > base_ratio, "skew must concentrate load"
        return probe.capacity_c * (base_ratio + skew_ratio) / 2

    def test_identical_capacity_exceeded(self, backend):
        capacity_c = self._calibrate(backend)
        served, control = self._pair(backend, capacity_c)
        assert served.execute(TWO_HOP).answers == control.execute(
            TWO_HOP
        ).answers
        skew = list(self.SKEW)  # all onto one worker
        _apply_both(served, control, inserts={"S1": skew})
        with pytest.raises(CapacityExceeded) as control_error:
            control.execute(TWO_HOP)
        with pytest.raises(CapacityExceeded) as served_error:
            served.execute(TWO_HOP)
        assert served.stats.ivm_hits == 1  # the merge *did* serve
        for attr in (
            "worker",
            "received_bits",
            "capacity_bits",
            "round_index",
        ):
            assert getattr(served_error.value, attr) == getattr(
                control_error.value, attr
            )
        assert str(served_error.value) == str(control_error.value)

    def test_capacity_failure_is_cached_and_state_survives(
        self, backend
    ):
        capacity_c = self._calibrate(backend)
        served, control = self._pair(backend, capacity_c)
        served.execute(TWO_HOP)
        control.execute(TWO_HOP)
        skew = list(self.SKEW)
        _apply_both(served, control, inserts={"S1": skew})
        with pytest.raises(CapacityExceeded) as first:
            served.execute(TWO_HOP)
        with pytest.raises(CapacityExceeded) as cached:
            served.execute(TWO_HOP)
        assert str(cached.value) == str(first.value)
        assert served.stats.executions == 2  # base run + one merge
        # Nothing was committed: deleting the skew heals the worker
        # and the same retained state serves the recovery merge.
        _apply_both(served, control, deletes={"S1": skew})
        mine = served.execute(TWO_HOP)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TWO_HOP))


class _SteppingClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step_s):
        self.now = 0.0
        self.step_s = step_s

    def __call__(self):
        reading = self.now
        self.now += self.step_s
        return reading


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeadlineMidMerge:
    def test_expiry_mid_merge_leaves_state_reusable(self, backend):
        served, control = _pair(backend)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 2)},
        )
        # Clock readings: construction (0s), entry check (1s), then
        # the merge's cooperative checks at 2s, 3s, ...  A 2.5s budget
        # passes entry and the first round, then trips inside the
        # merge -- after fragments were patched in temporaries.
        deadline = Deadline(2500.0, clock=_SteppingClock(1.0))
        exhausted = served.stats.deadline_exceeded
        with pytest.raises(DeadlineExceeded) as error:
            served.execute(TRIANGLE, deadline=deadline)
        assert "ivm" in error.value.where
        assert served.stats.deadline_exceeded == exhausted + 1
        # Nothing committed: the same retained state serves the next
        # (unbudgeted) request, bit-identically.
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))


@pytest.mark.parametrize("backend", BACKENDS)
class TestNoopChaining:
    """Empty deltas chain caches instead of orphaning them."""

    def test_result_cache_survives_empty_update(self, backend):
        service = QueryService(_database(), p=8, backend=backend)
        first = service.execute(TRIANGLE)
        version = service.apply_delta(DatabaseDelta.of())
        repeat = service.execute(TRIANGLE)
        assert repeat.result_hit
        assert repeat.version == version
        assert repeat.answers == first.answers
        assert service.stats.executions == 1

    def test_ineffective_delta_also_chains(self, backend):
        service = QueryService(_database(), p=8, backend=backend)
        service.execute(TRIANGLE)
        existing = next(iter(service.database["S1"].rows()))
        service.update(
            inserts={"S1": [existing]},
            deletes={"S1": [(9999, 9999)]},
        )
        assert service.execute(TRIANGLE).result_hit
        assert service.stats.executions == 1

    def test_retained_state_fast_forwards(self, backend):
        served, control = _pair(backend)
        served.execute(TRIANGLE)
        control.execute(TRIANGLE)
        served.apply_delta(DatabaseDelta.of())
        control.apply_delta(DatabaseDelta.of())
        _apply_both(
            served,
            control,
            inserts={"S1": _fresh_rows(served, "S1", 1)},
        )
        mine = served.execute(TRIANGLE)
        assert mine.ivm == "merged"
        _assert_parity(mine, control.execute(TRIANGLE))


class TestSessionSurface:
    """IVM status flows through Session results and explains."""

    def test_result_and_explain_carry_ivm(self):
        import repro

        session = repro.connect(_database(), p=8)
        try:
            statement = session.query(TRIANGLE)
            before = statement.execute()
            assert before.ivm is None
            assert statement.explain().ivm is None
            session.update(
                inserts={
                    "S1": _fresh_rows(session.service, "S1", 1)
                }
            )
            after = statement.execute()
            assert after.ivm == "merged"
            assert after.explain.ivm == "merged"
            assert after.explain.to_dict()["ivm"] == "merged"
            assert "merged" in after.explain.format()
        finally:
            session.close()

    def test_noop_update_keeps_planner_decisions(self):
        import repro

        session = repro.connect(_database(), p=8)
        try:
            statement = session.query(TRIANGLE)
            statement.execute()
            hits = session.planner_stats.decision_cache_hits
            session.update()  # empty: an effective no-op
            statement.execute()
            assert (
                session.planner_stats.decision_cache_hits == hits + 1
            )
        finally:
            session.close()
