"""The asyncio JSON-lines RPC server: protocol, errors, coalescing."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import connect
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.serve.rpc import RpcServer

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")


def _session(n=60, **kwargs):
    return connect(matching_database(VOCAB, n=n, rng=7), p=8, **kwargs)


class _Client:
    """A tiny line-oriented JSON client for the tests."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, server):
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_text(self, text: str) -> None:
        self.writer.write(text.encode() + b"\n")
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        assert line, "server closed the connection"
        return json.loads(line)

    async def call(self, request: dict) -> dict:
        await self.send_text(json.dumps(request))
        return await self.recv()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def rpc_test(coroutine):
    """Run one async test body under a fresh event loop."""
    return asyncio.run(coroutine)


class TestProtocol:
    def test_query_update_stats_roundtrip(self):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                response = await client.call(
                    {"id": 1, "op": "query", "q": "S1(x,y), S2(y,z)"}
                )
                assert response["ok"] and response["id"] == 1
                assert response["count"] == 60
                assert response["algorithm"] == "hypercube"
                assert len(response["answers"]) == 60
                assert response["version"] == 0

                response = await client.call(
                    {
                        "id": 2,
                        "op": "update",
                        "relation": "S1",
                        "rows": [[7, 9]],
                    }
                )
                assert response["ok"] and response["version"] == 1

                response = await client.call(
                    {"id": 3, "op": "query", "q": "S1(x,y)"}
                )
                assert response["count"] == 61

                response = await client.call({"op": "stats"})
                assert response["rpc"]["requests"] == 4
                assert response["service"]["updates"] == 1
                assert response["planner"]["decisions"] >= 2
                assert response["version"] == 1

                assert (await client.call({"op": "ping"}))["pong"]
                await client.close()

        rpc_test(body())

    def test_explain_op_reports_the_route(self):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                response = await client.call(
                    {
                        "op": "explain",
                        "q": "S1(x,y), S2(y,z)",
                        "plan": True,
                    }
                )
                assert response["ok"]
                explain = response["explain"]
                assert explain["algorithm"] == "hypercube"
                assert explain["shares"]["y"] == 8
                assert len(explain["candidates"]) == 4
                assert response["plan"]["num_rounds"] == 1
                # explain never executes
                stats = await client.call({"op": "stats"})
                assert stats["service"]["executions"] == 0
                await client.close()

        rpc_test(body())

    def test_eps_and_algorithm_travel_over_the_wire(self):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                pinned = await client.call(
                    {
                        "op": "query",
                        "q": "S1(x,y), S2(y,z)",
                        "algorithm": "multiround",
                    }
                )
                assert pinned["algorithm"] == "multiround"
                partial = await client.call(
                    {
                        "op": "query",
                        "q": "S1(x,y), S2(y,z), S3(z,x)",
                        "eps": "0",
                        "allow_partial": True,
                    }
                )
                assert partial["algorithm"] == "partial"
                await client.close()

        rpc_test(body())

    def test_streamed_query_sends_batches_then_summary(self):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                await client.send_text(
                    json.dumps(
                        {
                            "id": 9,
                            "op": "query",
                            "q": "S1(x,y)",
                            "stream": True,
                            "batch": 16,
                        }
                    )
                )
                rows = []
                while True:
                    line = await client.recv()
                    if "batch" in line:
                        assert line["id"] == 9
                        assert len(line["batch"]) <= 16
                        rows.extend(tuple(r) for r in line["batch"])
                        continue
                    assert line["ok"] and line["done"]
                    assert line["count"] == len(rows) == 60
                    assert "answers" not in line
                    break
                await client.close()

        rpc_test(body())


class TestErrors:
    """Every failure is a structured line; the loop always survives."""

    @pytest.mark.parametrize(
        "request_line, fragment",
        [
            ("this is not json", "invalid json"),
            (json.dumps({"op": "frobnicate"}), "unknown op"),
            (json.dumps({"op": "query"}), "missing query text"),
            (json.dumps({"op": "query", "q": "S1(x"}), "malformed"),
            (
                json.dumps({"op": "query", "q": "S1(x,y), S9(y,z)"}),
                "unknown relation",
            ),
            (
                json.dumps({"op": "query", "q": "S1(x,y,z)"}),
                "arity mismatch",
            ),
            (
                json.dumps({"op": "query", "q": "S1(x,y)", "eps": "1/0"}),
                "invalid eps",
            ),
            (
                json.dumps(
                    {"op": "query", "q": "S1(x,y)", "algorithm": "nope"}
                ),
                "unknown algorithm",
            ),
            (json.dumps({"op": "update", "relation": "S1"}), "rows"),
            (
                json.dumps(
                    {"op": "delete", "relation": "Nope", "rows": [[1, 2]]}
                ),
                "Nope",
            ),
        ],
    )
    def test_bad_requests_return_structured_errors(
        self, request_line, fragment
    ):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                await client.send_text(request_line)
                response = await client.recv()
                assert response["ok"] is False
                assert fragment in response["error"]
                # the connection survived: a good request still works
                follow_up = await client.call(
                    {"op": "query", "q": "S1(x,y)"}
                )
                assert follow_up["ok"] and follow_up["count"] == 60
                await client.close()

        rpc_test(body())

    def test_error_responses_echo_the_request_id(self):
        async def body():
            async with RpcServer(_session()) as server:
                client = await _Client.open(server)
                response = await client.call(
                    {"id": 42, "op": "query", "q": "S9(x,y)"}
                )
                assert response["id"] == 42
                assert response["error_type"] == "QueryError"
                await client.close()

        rpc_test(body())

    def test_capacity_failures_are_structured(self):
        async def body():
            session = connect(
                matching_database(VOCAB, n=40, rng=7),
                p=8,
                capacity_c=0.001,
                enforce_capacity=True,
            )
            async with RpcServer(session) as server:
                client = await _Client.open(server)
                response = await client.call(
                    {"op": "query", "q": "S1(x,y), S2(y,z)"}
                )
                assert response["ok"] is False
                assert response["error_type"] == "CapacityExceeded"
                await client.close()

        rpc_test(body())


class TestCoalescing:
    def test_concurrent_identical_statements_share_one_execution(self):
        async def body():
            async with RpcServer(_session(n=120)) as server:
                async def one():
                    client = await _Client.open(server)
                    response = await client.call(
                        {"op": "query", "q": "S1(x,y), S2(y,z)"}
                    )
                    await client.close()
                    return response

                responses = await asyncio.gather(*[one() for _ in range(8)])
                counts = {r["count"] for r in responses}
                assert counts == {120}
                flags = sorted(r["coalesced"] for r in responses)
                assert flags.count(True) == server.stats.coalesced
                # at least some requests piggybacked on the in-flight
                # execution or its memoized result
                executions = server.session.stats.executions
                assert executions == 1

        rpc_test(body())

    def test_coalescing_can_be_disabled(self):
        async def body():
            async with RpcServer(_session(), coalesce=False) as server:
                async def one():
                    client = await _Client.open(server)
                    response = await client.call(
                        {"op": "query", "q": "S1(x,y), S2(y,z)"}
                    )
                    await client.close()
                    return response["coalesced"]

                flags = await asyncio.gather(*[one() for _ in range(4)])
                assert not any(flags)
                assert server.stats.coalesced == 0

        rpc_test(body())

    def test_distinct_statements_do_not_coalesce(self):
        async def body():
            async with RpcServer(_session()) as server:
                async def one(text):
                    client = await _Client.open(server)
                    response = await client.call(
                        {"op": "query", "q": text}
                    )
                    await client.close()
                    return response

                responses = await asyncio.gather(
                    one("S1(x,y)"), one("S2(x,y)"), one("S3(x,y)")
                )
                assert all(r["ok"] for r in responses)
                assert not any(r["coalesced"] for r in responses)

        rpc_test(body())
