"""The /metrics endpoint: histogram math, text grammar, HTTP serving."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro import connect
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.serve.metrics import (
    CONTENT_TYPE,
    Histogram,
    MetricsServer,
    render_metrics,
)
from repro.serve.rpc import RpcServer

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$"
)
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _session(n=60, **kwargs):
    return connect(matching_database(VOCAB, n=n, rng=7), p=8, **kwargs)


def parse_exposition(text: str) -> dict[str, dict]:
    """Validate Prometheus text format 0.0.4; return family metadata.

    Enforces the grammar the Prometheus scraper enforces: every
    sample belongs to a family announced by ``# TYPE``, names and
    labels are well-formed, values parse as floats (``+Inf``
    included), and each family's samples are contiguous.
    """
    families: dict[str, dict] = {}
    current: str | None = None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert METRIC_NAME.fullmatch(name), name
            assert help_text, f"empty HELP for {name}"
            assert name not in families, f"duplicate family {name}"
            families[name] = {"help": help_text, "samples": []}
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name in families, f"TYPE before HELP for {name}"
            assert kind in ("counter", "gauge", "histogram", "summary")
            families[name]["type"] = kind
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_LINE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        assert current is not None, f"sample before any TYPE: {line!r}"
        base = current
        if families[current].get("type") == "histogram":
            assert (
                name == base
                or name.startswith(base + "_bucket")
                or name in (base + "_sum", base + "_count")
            ), f"{name} outside histogram family {base}"
        else:
            assert name == base, (
                f"sample {name} outside announced family {base}"
            )
        labels = match.group("labels")
        parsed_labels: dict[str, str] = {}
        if labels:
            inner = labels[1:-1]
            for part in inner.split(","):
                assert LABEL.match(part), f"bad label {part!r} in {line!r}"
                key, _, value = part.partition("=")
                parsed_labels[key] = value[1:-1]
        raw_value = match.group("value")
        value = (
            float("inf")
            if raw_value == "+Inf"
            else float(raw_value)
        )
        families[current]["samples"].append((name, parsed_labels, value))
    for name, family in families.items():
        assert "type" in family, f"family {name} missing TYPE"
        assert family["samples"], f"family {name} has no samples"
    return families


class TestHistogram:
    def test_observe_buckets_and_quantiles(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == pytest.approx(5.605)
        assert histogram.counts == [1, 2, 1, 1]  # last = overflow
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(1.0) == float("inf")
        assert Histogram().quantile(0.5) == 0.0

    def test_merge_requires_identical_bounds(self):
        left = Histogram(bounds=(0.1, 1.0))
        right = Histogram(bounds=(0.1, 1.0))
        left.observe(0.05)
        right.observe(2.0)
        left.merge(right)
        assert left.count == 2
        assert left.counts == [1, 0, 1]
        with pytest.raises(ValueError):
            left.merge(Histogram(bounds=(0.2, 1.0)))

    def test_pickle_roundtrip(self):
        import pickle

        histogram = Histogram(bounds=(0.1, 1.0))
        histogram.observe(0.5)
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone.bounds == histogram.bounds
        assert clone.counts == histogram.counts
        assert clone.count == 1
        assert clone.total == 0.5


class TestRenderMetrics:
    def _serve_some_traffic(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(
                    session, max_inflight=2, max_queue=2
                ) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    for request in (
                        {"id": 1, "op": "query", "q": "S1(x,y), S2(y,z)"},
                        {"id": 2, "op": "query", "q": "nonsense("},
                        {"id": 3, "op": "ping"},
                    ):
                        writer.write(
                            (json.dumps(request) + "\n").encode()
                        )
                        await writer.drain()
                        await reader.readline()
                    writer.close()
                    await writer.wait_closed()
                    return render_metrics(server)
            finally:
                session.close()

        return asyncio.run(body())

    def test_exposition_parses_under_the_grammar(self):
        families = parse_exposition(self._serve_some_traffic())
        # Spot checks on the families the dashboards would sit on.
        assert families["repro_rpc_connections_total"]["type"] == "counter"
        assert families["repro_admission_inflight"]["type"] == "gauge"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for family in families.values()
            for name, labels, value in family["samples"]
        }
        assert (
            samples[("repro_rpc_requests_total", (("op", "query"),))] == 2
        )
        assert samples[("repro_rpc_errors_total", ())] == 1
        assert samples[("repro_admission_limit_inflight", ())] == 2
        assert (
            samples[("repro_service_executions_total", ())] == 1
        )
        assert samples[("repro_database_version", ())] == 0
        # IVM families: present and typed even before any update --
        # and zero-valued, since IVM is only consulted after a delta.
        assert families["repro_ivm_requests_total"]["type"] == "counter"
        assert families["repro_ivm_retained_bytes"]["type"] == "gauge"
        assert families["repro_ivm_retained_states"]["type"] == "gauge"
        assert families["repro_ivm_fallbacks_total"]["type"] == "counter"
        assert (
            samples[("repro_ivm_requests_total", (("outcome", "hit"),))]
            == 0
        )
        assert (
            samples[
                ("repro_ivm_requests_total", (("outcome", "fallback"),))
            ]
            == 0
        )
        # The version-0 execution still captures state for later.
        assert samples[("repro_ivm_retained_states", ())] >= 0

    def test_histogram_families_are_cumulative_and_consistent(self):
        families = parse_exposition(self._serve_some_traffic())
        family = families["repro_request_seconds"]
        assert family["type"] == "histogram"
        buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        count = next(
            value
            for name, _, value in family["samples"]
            if name.endswith("_count")
        )
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == count == 1  # one successful query
        total = next(
            value
            for name, _, value in family["samples"]
            if name.endswith("_sum")
        )
        assert total > 0

    def test_phase_histograms_carry_per_phase_labels(self):
        families = parse_exposition(self._serve_some_traffic())
        family = families["repro_phase_seconds"]
        phases = {
            labels["phase"]
            for name, labels, _ in family["samples"]
            if name.endswith("_bucket")
        }
        assert {"route", "local"} <= phases


class TestMetricsServer:
    async def _get(self, host, port, path, method="GET"):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
        )
        await writer.drain()
        status_line = (await reader.readline()).decode()
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode().partition(":")
            headers[key.strip().lower()] = value.strip()
        body = (await reader.read()).decode()
        writer.close()
        await writer.wait_closed()
        return int(status_line.split()[1]), headers, body

    def test_scrape_over_http(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    async with MetricsServer(server) as metrics:
                        host, port = metrics.address
                        status, headers, page = await self._get(
                            host, port, "/metrics"
                        )
                        assert status == 200
                        assert headers["content-type"] == CONTENT_TYPE
                        assert int(headers["content-length"]) == len(
                            page.encode()
                        )
                        families = parse_exposition(page)
                        assert "repro_rpc_connections_total" in families
                        assert metrics.scrapes == 1
            finally:
                session.close()

        asyncio.run(body())

    def test_healthz_and_unknown_paths(self):
        async def body():
            session = _session()
            try:
                async with RpcServer(session) as server:
                    async with MetricsServer(server) as metrics:
                        host, port = metrics.address
                        status, _, page = await self._get(
                            host, port, "/healthz"
                        )
                        assert status == 200
                        assert json.loads(page) == {
                            "ok": True,
                            "version": 0,
                        }
                        status, _, _ = await self._get(
                            host, port, "/nope"
                        )
                        assert status == 404
                        status, _, _ = await self._get(
                            host, port, "/metrics", method="POST"
                        )
                        assert status == 405
                        assert metrics.scrapes == 0
            finally:
                session.close()

        asyncio.run(body())

    def test_faults_gauge_reflects_the_environment(self, monkeypatch):
        from repro.serve.faults import FAULT_ENVS, ROUND_DELAY_ENV

        for name in FAULT_ENVS:
            monkeypatch.delenv(name, raising=False)
        session = _session()
        try:

            async def build():
                async with RpcServer(session) as server:
                    return render_metrics(server)

            page = asyncio.run(build())
            assert "repro_faults_active 0" in page
            monkeypatch.setenv(ROUND_DELAY_ENV, "5")
            page = asyncio.run(build())
            assert "repro_faults_active 1" in page
        finally:
            session.close()
