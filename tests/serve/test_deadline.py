"""Per-request deadlines: cooperative cancellation, precedence, reuse.

The hardening contract (ISSUE 8): a ``deadline_ms`` budget is checked
only at cooperative points (between rounds, between streamed blocks,
at service entry), raises a structured
:class:`~repro.engine.deadline.DeadlineExceeded`, loses to capacity
when a round does both, beats every cached outcome when already spent
at entry -- and never corrupts the pooled simulators: the request
after a deadline overrun answers bit-identically to a fresh session.
"""

from __future__ import annotations

import pytest

from repro import connect
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.engine.deadline import Deadline, DeadlineExceeded
from repro.serve.faults import BLOCK_DELAY_ENV, ROUND_DELAY_ENV
from repro.serve.service import QueryService

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")
TRIANGLE = "S1(x,y), S2(y,z), S3(z,x)"
# 60 answers on the n=60 matching database (the triangle has 1).
PATH = "S1(x,y), S2(y,z)"


def _database(n=60):
    return matching_database(VOCAB, n=n, rng=7)


class _FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadlineObject:
    def test_budget_accounting_on_a_fake_clock(self):
        clock = _FakeClock()
        deadline = Deadline(250.0, clock=clock)
        assert deadline.remaining_ms() == 250.0
        assert not deadline.expired
        clock.advance(0.1)
        assert deadline.elapsed_ms() == pytest.approx(100.0)
        assert deadline.remaining_ms() == pytest.approx(150.0)
        deadline.check("early")  # plenty left: no raise
        clock.advance(0.2)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0  # clamped, never negative
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("late")
        assert excinfo.value.where == "late"
        assert excinfo.value.budget_ms == 250.0
        assert excinfo.value.elapsed_ms == pytest.approx(300.0)

    def test_exact_boundary_counts_as_expired(self):
        clock = _FakeClock()
        clock.now = 0.0
        deadline = Deadline(125.0, clock=clock)
        clock.advance(0.125)  # binary-exact: elapsed is exactly 125 ms
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("boundary")

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_after_ms_passes_none_through(self):
        assert Deadline.after_ms(None) is None
        deadline = Deadline.after_ms(50)
        assert deadline is not None and deadline.budget_ms == 50.0

    def test_pickle_roundtrip_preserves_fields(self):
        import pickle

        error = DeadlineExceeded("between rounds", 123.4, 100.0)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.where == "between rounds"
        assert clone.elapsed_ms == 123.4
        assert clone.budget_ms == 100.0


class TestCooperativeCancellation:
    def test_deadline_fires_between_rounds(self, monkeypatch):
        # The injected per-round delay makes the fast triangle query
        # reliably slower than a 10 ms budget; the first between-round
        # checkpoint (after the injected sleep) observes the overrun.
        monkeypatch.setenv(ROUND_DELAY_ENV, "50")
        session = connect(_database(), p=8)
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                session.execute(TRIANGLE, deadline_ms=10)
            assert excinfo.value.where == "between rounds"
            assert excinfo.value.budget_ms == 10.0
        finally:
            session.close()

    def test_deadline_fires_mid_round_between_streamed_blocks(
        self, monkeypatch
    ):
        pytest.importorskip("numpy")
        # Small blocks + an injected per-block delay: the budget runs
        # out *inside* an open round's block loop -- the mid-round
        # half of cooperative cancellation.
        monkeypatch.setenv(BLOCK_DELAY_ENV, "30")
        session = connect(
            _database(), p=8, backend="numpy", chunk_rows=16
        )
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                session.execute(TRIANGLE, deadline_ms=20)
            assert excinfo.value.where == "streamed block"
        finally:
            session.close()

    def test_no_deadline_is_unaffected_by_checks(self):
        session = connect(_database(), p=8)
        try:
            result = session.execute(PATH)
            assert len(result.answers) == 60
        finally:
            session.close()

    def test_rejects_non_positive_deadline(self):
        session = connect(_database(), p=8)
        try:
            with pytest.raises(ValueError):
                session.query(TRIANGLE, deadline_ms=0)
            with pytest.raises(ValueError):
                session.query(TRIANGLE, deadline_ms=-10)
        finally:
            session.close()

    def test_deadline_ms_is_part_of_the_coalescing_key(self):
        session = connect(_database(), p=8)
        try:
            plain = session.query(TRIANGLE)
            bounded = session.query(TRIANGLE, deadline_ms=100)
            assert plain.canonical_key() != bounded.canonical_key()
            assert (
                session.query(TRIANGLE, deadline_ms=100).canonical_key()
                == bounded.canonical_key()
            )
        finally:
            session.close()


class TestPrecedence:
    def test_capacity_beats_deadline_when_a_round_does_both(self):
        from repro.mpc.simulator import CapacityExceeded

        # A stepped clock makes the budget expire *during* the round
        # that overflows: construction (call 1), the service-entry
        # check (2) and the between-rounds check before the round (3)
        # all see 0 elapsed; any later look would see 10 s.  The
        # deadline is never consulted at round close, so the capacity
        # failure wins deterministically.
        times = iter([0.0, 0.0, 0.0])
        clock = lambda: next(times, 10.0)  # noqa: E731
        service = QueryService(
            _database(), p=8, capacity_c=0.001, enforce_capacity=True
        )
        try:
            deadline = Deadline(5.0, clock=clock)
            with pytest.raises(CapacityExceeded):
                service.execute(TRIANGLE, deadline=deadline)
            assert deadline.expired  # both conditions really held
        finally:
            service.close()

    def test_expired_budget_at_entry_beats_cached_capacity_failure(
        self,
    ):
        from repro.mpc.simulator import CapacityExceeded

        clock = _FakeClock()
        service = QueryService(
            _database(), p=8, capacity_c=0.001, enforce_capacity=True
        )
        try:
            # Memoize the capacity failure in the result cache.
            with pytest.raises(CapacityExceeded):
                service.execute(TRIANGLE)
            # An already-expired budget must win over the cached
            # outcome -- checked before the result cache is consulted.
            expired = Deadline(10.0, clock=clock)
            clock.advance(1.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                service.execute(TRIANGLE, deadline=expired)
            assert excinfo.value.where == "at service entry"
            assert service.stats.deadline_exceeded == 1
        finally:
            service.close()

    def test_deadline_outcome_is_never_cached(self, monkeypatch):
        monkeypatch.setenv(ROUND_DELAY_ENV, "30")
        service = QueryService(_database(), p=8)
        try:
            with pytest.raises(DeadlineExceeded):
                service.execute(PATH, deadline=Deadline(1.0))
            executions = service.stats.executions
            monkeypatch.delenv(ROUND_DELAY_ENV)
            # The same statement with a fresh budget executes for real
            # (no memoized DeadlineExceeded) and succeeds.
            result = service.execute(PATH, deadline=Deadline(60000))
            assert len(result.answers) == 60
            assert service.stats.executions == executions + 1
        finally:
            service.close()


class TestSimulatorReuseParity:
    def test_answers_bit_identical_after_a_deadline_overrun(
        self, monkeypatch
    ):
        """The parity gate: an abandoned execution corrupts nothing.

        After a DeadlineExceeded mid-plan, the same session answers
        the identical query exactly like a session that never saw the
        overrun -- same answers, same per-server loads.
        """
        reference = connect(_database(), p=8)
        try:
            expected = reference.execute(PATH)
        finally:
            reference.close()

        session = connect(_database(), p=8, result_cache_size=0)
        try:
            monkeypatch.setenv(ROUND_DELAY_ENV, "30")
            with pytest.raises(DeadlineExceeded):
                session.execute(PATH, deadline_ms=1)
            monkeypatch.delenv(ROUND_DELAY_ENV)
            after = session.execute(PATH)
            assert after.answers == expected.answers
            assert after.raw.per_server == expected.raw.per_server
            # And again, to prove the pooled simulator stays healthy.
            assert session.execute(PATH).answers == expected.answers
        finally:
            session.close()

    def test_streamed_overrun_leaves_the_pool_reusable(
        self, monkeypatch
    ):
        pytest.importorskip("numpy")
        reference = connect(_database(), p=8, backend="numpy")
        try:
            expected = reference.execute(PATH)
        finally:
            reference.close()

        session = connect(
            _database(),
            p=8,
            backend="numpy",
            chunk_rows=16,
            result_cache_size=0,
        )
        try:
            monkeypatch.setenv(BLOCK_DELAY_ENV, "30")
            with pytest.raises(DeadlineExceeded):
                session.execute(PATH, deadline_ms=20)
            monkeypatch.delenv(BLOCK_DELAY_ENV)
            after = session.execute(PATH)
            assert after.answers == expected.answers
        finally:
            session.close()
