"""RPC parallel dispatch: worker clamping, fan-out wiring, stats."""

from __future__ import annotations

import asyncio

from repro.serve.rpc import RpcServer, serve_tcp

from tests.serve.test_rpc import _Client, _session, rpc_test


class TestDispatchWidth:
    def test_defaults_follow_the_session_fanout_width(self):
        session = _session(workers=2)
        try:
            server = RpcServer(session)
            assert server.workers == 2
        finally:
            session.close()

    def test_clamped_to_one_without_a_fanout_pool(self):
        # Dispatching a thread-unsafe session from several threads is
        # never allowed: an explicit workers=4 over a plain session
        # still runs single-threaded.
        session = _session()
        try:
            assert RpcServer(session, workers=4).workers == 1
            assert RpcServer(session).workers == 1
        finally:
            session.close()

    def test_clamped_once_the_pool_breaks(self):
        session = _session(workers=2)
        try:
            for process in session.fanout._processes:
                process.kill()
                process.join(timeout=30)
            assert RpcServer(session).workers == 1
        finally:
            session.close()


class TestEndToEnd:
    def test_queries_fan_out_and_stats_report_it(self):
        async def body():
            session = _session(workers=2)
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    first = await client.call(
                        {"id": 1, "op": "query", "q": "S1(x,y), S2(y,z)"}
                    )
                    assert first["ok"] and first["count"] == 60
                    second = await client.call(
                        {"id": 2, "op": "query", "q": "S1(x,y)"}
                    )
                    assert second["ok"] and second["count"] == 60

                    stats = await client.call({"op": "stats"})
                    parallel = stats["parallel"]
                    assert parallel["dispatch_threads"] == 2
                    assert parallel["fanout_workers"] == 2
                    assert parallel["fanout_usable"] is True
                    assert parallel["fanout_queries"] == 2
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_answers_match_a_single_process_server(self):
        queries = ("S1(x,y), S2(y,z), S3(z,x)", "S1(x,y), S2(y,z)")

        async def serve(workers):
            session = _session(workers=workers)
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    answers = []
                    for index, q in enumerate(queries):
                        response = await client.call(
                            {"id": index, "op": "query", "q": q}
                        )
                        assert response["ok"], response
                        answers.append(response["answers"])
                    await client.close()
                    return answers
            finally:
                session.close()

        async def body():
            assert await serve(1) == await serve(2)

        rpc_test(body())

    def test_updates_stay_serialized_and_visible_to_workers(self):
        async def body():
            session = _session(workers=2)
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    before = await client.call(
                        {"id": 1, "op": "query", "q": "S1(x,y)"}
                    )
                    update = await client.call(
                        {
                            "id": 2,
                            "op": "update",
                            "relation": "S1",
                            "rows": [[7, 9]],
                        }
                    )
                    assert update["ok"] and update["version"] == 1
                    after = await client.call(
                        {"id": 3, "op": "query", "q": "S1(x,y)"}
                    )
                    assert after["count"] == before["count"] + 1
                    assert after["version"] == 1
                    assert session.fanout.usable
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_queries_survive_a_pool_broken_mid_serve(self):
        # Fan-out dies while serving: dispatch re-routes to the single
        # control thread and answers keep flowing in-process.
        async def body():
            session = _session(workers=2)
            try:
                async with RpcServer(session) as server:
                    client = await _Client.open(server)
                    first = await client.call(
                        {"id": 1, "op": "query", "q": "S1(x,y)"}
                    )
                    assert first["ok"] and first["count"] == 60
                    for process in session.fanout._processes:
                        process.kill()
                        process.join(timeout=30)
                    second = await client.call(
                        {"id": 2, "op": "query", "q": "S1(x,y), S2(y,z)"}
                    )
                    assert second["ok"] and second["count"] == 60
                    stats = await client.call({"op": "stats"})
                    assert stats["parallel"]["fanout_usable"] is False
                    await client.close()
            finally:
                session.close()

        rpc_test(body())

    def test_serve_tcp_announces_dispatch_threads(self):
        async def body():
            session = _session(workers=2)
            announcements = []
            ready = asyncio.Event()
            task = asyncio.create_task(
                serve_tcp(
                    session,
                    port=0,
                    ready=ready,
                    announce=announcements.append,
                )
            )
            try:
                await asyncio.wait_for(ready.wait(), timeout=30)
                assert "2 dispatch threads" in announcements[0]
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                session.close()

        rpc_test(body())
