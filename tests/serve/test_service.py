"""QueryService tests: cached-vs-fresh parity, updates, failures, stats.

The acceptance bar: cached plans give bit-identical answers,
per-server loads and CapacityExceeded behaviour to fresh compilation,
on both backends.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.multiround import run_plan
from repro.algorithms.skewaware import run_hypercube_skew_aware
from repro.backend import numpy_available
from repro.core.plans import build_plan
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.data.versioned import VersionedDatabase
from repro.mpc.simulator import CapacityExceeded
from repro.serve import QueryService

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")


def _database(n=40, rng=7):
    return matching_database(VOCAB, n=n, rng=rng)


def _truth(query_text, database):
    query = parse_query(query_text)
    local = {}
    for name in database.relations:
        relation = database[name]
        rows = getattr(relation, "tuples", None)
        local[name] = (
            tuple(relation.rows()) if rows is None else rows
        )
    return evaluate_query(query, local)


@pytest.mark.parametrize("backend", BACKENDS)
class TestParityWithFreshCompilation:
    def test_first_and_repeat_requests_match_run_hypercube(
        self, backend
    ):
        database = _database()
        service = QueryService(database, p=8, backend=backend)
        query = "S1(x,y), S2(y,z)"
        fresh = run_hypercube(
            parse_query(query), database, p=8, backend=backend
        )
        first = service.execute(query)
        repeat = service.execute(query)
        assert repeat.result_hit and not first.result_hit
        for served in (first, repeat):
            assert served.answers == fresh.answers
            assert served.per_server == fresh.per_server_answers
            assert [
                r.received_bits for r in served.report.rounds
            ] == [r.received_bits for r in fresh.report.rounds]
            assert [
                r.received_tuples for r in served.report.rounds
            ] == [r.received_tuples for r in fresh.report.rounds]

    def test_routing_cache_replay_matches_fresh(self, backend):
        database = _database()
        # Disable result memoization so the repeat exercises the
        # routing-cache replay path (ship/deliver/local re-run).
        service = QueryService(
            database, p=8, backend=backend, result_cache_size=0
        )
        query = "S1(x,y), S2(y,z), S3(z,x)"
        first = service.execute(query)
        replay = service.execute(query)
        assert service.stats.routing_hits > 0
        fresh = run_hypercube(
            parse_query(query), database, p=8, backend=backend
        )
        for served in (first, replay):
            assert served.answers == fresh.answers
            assert served.per_server == fresh.per_server_answers
            assert [
                r.received_bits for r in served.report.rounds
            ] == [r.received_bits for r in fresh.report.rounds]

    def test_isomorphic_request_answers_exactly(self, backend):
        database = _database()
        service = QueryService(database, p=8, backend=backend)
        canonical = service.execute("S1(x,y), S2(y,z)")
        variant = service.execute("S2(a,b), S1(b,c)")
        assert variant.plan is canonical.plan
        assert service.stats.plans.isomorphic_hits == 1
        assert variant.answers == _truth("S2(a,b), S1(b,c)", database)

    def test_isomorphic_head_permutation(self, backend):
        database = _database()
        service = QueryService(database, p=8, backend=backend)
        service.execute("S1(x,y), S2(y,z)")
        variant = service.execute("q(c,b,a) = S2(a,b), S1(b,c)")
        assert variant.answers == _truth(
            "q(c,b,a) = S2(a,b), S1(b,c)", database
        )

    def test_skewaware_service_matches_fresh(self, backend):
        from repro.data.generators import skewed_database

        query = parse_query("S1(x,y), S2(y,z)")
        database = skewed_database(query, n=60, rng=1, heavy_fraction=0.5)
        service = QueryService(
            database, p=8, backend=backend, algorithm="skewaware"
        )
        fresh = run_hypercube_skew_aware(
            query, database, p=8, backend=backend
        )
        for _ in range(2):
            served = service.execute("S1(x,y), S2(y,z)")
            assert served.answers == fresh.answers
            assert served.per_server == fresh.per_server_answers
        assert served.heavy_hitters == fresh.heavy_hitters

    def test_multiround_service_matches_fresh(self, backend):
        query = parse_query("S1(a,b), S2(b,c), S3(c,d), S4(d,e)")
        database = matching_database(query, n=30, rng=2)
        service = QueryService(
            database,
            p=8,
            backend=backend,
            algorithm="multiround",
            eps=Fraction(0),
        )
        fresh = run_plan(
            build_plan(query, Fraction(0)), database, p=8, backend=backend
        )
        for _ in range(2):
            served = service.execute(str(query))
            assert served.answers == fresh.answers


@pytest.mark.parametrize("backend", BACKENDS)
class TestUpdates:
    def test_update_bumps_version_and_invalidates_results(self, backend):
        database = _database(n=30)
        service = QueryService(database, p=8, backend=backend)
        query = "S1(x,y), S2(y,z)"
        before = service.execute(query)
        version = service.update(inserts={"S1": [(1, 2), (3, 4)]})
        assert version == 1
        after = service.execute(query)
        assert not after.result_hit
        assert after.version == 1
        # The mutated database really is what got queried.
        assert after.answers == _truth(query, service.database.snapshot)
        assert before.answers != after.answers or True  # answers may grow

    def test_delete_roundtrip_restores_answers(self, backend):
        database = _database(n=30)
        service = QueryService(database, p=8, backend=backend)
        query = "S1(x,y), S2(y,z)"
        baseline = service.execute(query).answers
        service.update(inserts={"S1": [(1, 2)]})
        service.update(deletes={"S1": [(1, 2)]})
        assert service.execute(query).answers == baseline

    def test_update_keeps_plans_but_reexecutes(self, backend):
        database = _database(n=30)
        service = QueryService(database, p=8, backend=backend)
        query = "S1(x,y), S2(y,z)"
        service.execute(query)
        executions_before = service.stats.executions
        service.update(inserts={"S2": [(5, 6)]})
        served = service.execute(query)
        assert served.plan_hit  # compilation amortized across versions
        assert service.stats.executions == executions_before + 1
        assert service.stats.plans.misses == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestCapacityParity:
    def test_fresh_and_cached_failures_match_run_hypercube(self, backend):
        database = _database(n=40)
        query = "S1(x,y), S2(y,z)"
        with pytest.raises(CapacityExceeded) as fresh:
            run_hypercube(
                parse_query(query),
                database,
                p=8,
                backend=backend,
                capacity_c=0.001,
                enforce_capacity=True,
            )
        service = QueryService(
            database,
            p=8,
            backend=backend,
            capacity_c=0.001,
            enforce_capacity=True,
        )
        for attempt in range(2):  # second raise comes from the cache
            with pytest.raises(CapacityExceeded) as served:
                service.execute(query)
            assert served.value.worker == fresh.value.worker
            assert served.value.received_bits == fresh.value.received_bits
            assert served.value.round_index == fresh.value.round_index
        assert service.stats.executions == 1
        assert service.stats.capacity_failures == 2

    def test_service_recovers_after_failure(self, backend):
        database = _database(n=40)
        service = QueryService(
            database,
            p=8,
            backend=backend,
            capacity_c=0.001,
            enforce_capacity=True,
        )
        with pytest.raises(CapacityExceeded):
            service.execute("S1(x,y), S2(y,z)")
        # A different query through the same pooled simulator.
        with pytest.raises(CapacityExceeded):
            service.execute("S2(x,y), S3(y,z)")
        assert service.stats.executions == 2


class TestStatsAndConstruction:
    def test_phase_seconds_aggregate(self):
        service = QueryService(_database(n=30), p=8, backend="pure")
        service.execute("S1(x,y), S2(y,z)")
        assert service.stats.phase_seconds["route"] > 0.0
        assert service.stats.phase_seconds["local"] > 0.0
        total = sum(service.stats.phase_seconds.values())
        service.execute("S1(x,y), S2(y,z)")  # memoized: no new phases
        assert sum(service.stats.phase_seconds.values()) == total

    def test_requests_and_answers_counted(self):
        service = QueryService(_database(n=30), p=8, backend="pure")
        first = service.execute("S1(x,y), S2(y,z)")
        service.execute("S1(x,y), S2(y,z)")
        assert service.stats.requests == 2
        assert service.stats.answers_served == 2 * len(first.answers)

    def test_accepts_versioned_database(self):
        versioned = VersionedDatabase(_database(n=30), backend="pure")
        service = QueryService(versioned, p=8, backend="pure")
        assert service.database is versioned
        service.execute("S1(x,y), S2(y,z)")
        versioned.update(inserts={"S1": [(2, 3)]})
        after = service.execute("S1(x,y), S2(y,z)")
        assert after.version == 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            QueryService(_database(n=20), p=4, algorithm="quantum")

    def test_accepts_prebuilt_query_objects(self, two_hop):
        database = matching_database(two_hop, n=30, rng=3)
        service = QueryService(database, p=8, backend="pure")
        served = service.execute(two_hop)
        fresh = run_hypercube(two_hop, database, p=8, backend="pure")
        assert served.answers == fresh.answers


class TestDisabledCaches:
    def test_plan_cache_size_zero_compiles_every_request(self):
        service = QueryService(
            _database(n=20), p=4, backend="pure", plan_cache_size=0
        )
        first = service.execute("S1(x,y), S2(y,z)")
        repeat = service.execute("S1(x,y), S2(y,z)")
        iso = service.execute("S2(a,b), S1(b,c)")
        assert not first.plan_hit and not repeat.plan_hit
        assert not iso.plan_hit
        assert service.stats.plans.misses == 3
        assert first.answers == repeat.answers


@pytest.mark.parametrize("backend", BACKENDS)
class TestPerRequestOverrides:
    """The Session planner's hook: per-request algorithm/eps."""

    def test_algorithm_override_matches_dedicated_service(self, backend):
        database = _database()
        mixed = QueryService(database, p=8, backend=backend)
        dedicated = QueryService(
            database, p=8, backend=backend, algorithm="multiround"
        )
        query = "S1(x,y), S2(y,z)"
        overridden = mixed.execute(query, algorithm="multiround")
        reference = dedicated.execute(query)
        assert overridden.algorithm == "multiround"
        assert overridden.answers == reference.answers
        assert overridden.per_server == reference.per_server
        assert (
            overridden.plan.signature.cache_key
            == reference.plan.signature.cache_key
        )

    def test_override_uses_the_algorithms_own_capacity_default(
        self, backend
    ):
        service = QueryService(_database(), p=8, backend=backend)
        hc = service.execute("S1(x,y)")
        mr = service.execute("S1(x,y)", algorithm="multiround")
        assert hc.plan.signature.capacity_c == 4.0
        assert mr.plan.signature.capacity_c == 8.0

    def test_distinct_overrides_cache_separately(self, backend):
        service = QueryService(_database(), p=8, backend=backend)
        query = "S1(x,y), S2(y,z)"
        service.execute(query)
        service.execute(query, algorithm="multiround")
        assert service.stats.plans.misses == 2
        service.execute(query)
        service.execute(query, algorithm="multiround")
        assert service.stats.plans.misses == 2  # both now cached
        assert service.stats.result_hits == 2

    def test_compile_shares_the_plan_cache_with_execute(self, backend):
        service = QueryService(_database(), p=8, backend=backend)
        plan = service.compile("S1(x,y), S2(y,z)")
        assert service.stats.plans.misses == 1
        result = service.execute("S1(x,y), S2(y,z)")
        assert result.plan is plan
        assert service.stats.plans.misses == 1

    def test_unknown_override_raises_query_error(self, backend):
        from repro.core.query import QueryError

        service = QueryService(_database(), p=8, backend=backend)
        with pytest.raises(QueryError, match="unknown algorithm"):
            service.execute("S1(x,y)", algorithm="quantum")

    def test_validation_rejects_bad_schemas(self, backend):
        from repro.core.query import QueryError

        service = QueryService(_database(), p=8, backend=backend)
        with pytest.raises(QueryError, match="unknown relation"):
            service.execute("S9(x,y)")
        with pytest.raises(QueryError, match="arity mismatch"):
            service.execute("S1(x,y,z)")
