"""The Session front door: connect / query / execute / explain / stream."""

from __future__ import annotations

from fractions import Fraction

import pytest

import repro
from repro import Session, connect
from repro.core.query import QueryError, parse_query
from repro.data.matching import matching_database
from repro.mpc.simulator import CapacityExceeded

VOCAB = parse_query("S1(x,y), S2(y,z), S3(z,x)")


def _session(n=60, **kwargs):
    return connect(matching_database(VOCAB, n=n, rng=7), **kwargs)


class TestConnect:
    def test_connect_is_exported_at_package_top_level(self):
        assert repro.connect is connect
        assert isinstance(_session(), Session)

    def test_context_manager(self):
        with _session() as session:
            assert len(session.query("S1(x,y)").execute()) == 60

    def test_accepts_prebuilt_queries_and_text(self, two_hop):
        session = _session()
        from_text = session.query("q(x,y,z) = S1(x,y), S2(y,z)").execute()
        from_query = session.query(two_hop).execute()
        assert from_text.answers == from_query.answers

    def test_exposes_versions_and_config(self):
        session = _session(p=8, backend="pure")
        assert session.p == 8
        assert session.backend == "pure"
        assert session.version == 0


class TestStatements:
    def test_statement_is_lazy_until_executed(self):
        session = _session()
        session.query("S1(x,y), S2(y,z)")  # prepared, never run
        assert session.stats.requests == 0
        assert session.planner_stats.decisions == 0

    def test_execute_returns_result_with_explain(self):
        session = _session()
        result = session.query("S1(x,y), S2(y,z)").execute()
        assert result.algorithm == "hypercube"
        assert result.explain.algorithm == "hypercube"
        assert len(result) == len(result.answers)
        assert tuple(iter(result)) == result.answers

    def test_stream_yields_every_answer_in_order(self):
        session = _session()
        statement = session.query("S1(x,y), S2(y,z)")
        executed = statement.execute()
        assert tuple(statement.stream(batch_size=7)) == executed.answers
        with pytest.raises(ValueError, match="batch_size"):
            next(statement.stream(batch_size=0))

    def test_statement_reexecutes_against_new_versions(self):
        session = _session(n=10)
        statement = session.query("S1(x,y)")
        before = statement.execute()
        session.update(inserts={"S1": [(7, 9)]})
        after = statement.execute()
        assert after.version == before.version + 1
        assert len(after) == len(before) + 1

    def test_canonical_key_identifies_semantics(self):
        session = _session()
        a = session.query("S1(x,y), S2(y,z)")
        b = session.query("S1(u,v), S2(v,w)")  # different variable names
        c = session.query("S1(x,y), S2(y,z)", eps=Fraction(0))
        assert a.canonical_key() != b.canonical_key()
        assert a.canonical_key() != c.canonical_key()
        assert (
            a.canonical_key()
            == session.query("S1(x,y), S2(y,z)").canonical_key()
        )

    def test_describe_plan_reports_structure(self):
        session = _session()
        description = session.query("S1(x,y), S2(y,z)").describe_plan()
        assert description["algorithm"] == "hypercube"
        assert description["num_rounds"] == 1
        assert description["rounds"][0]["steps"][0]["type"] == "HashRoute"
        assert description["shares"]["y"] == 16

    def test_shorthand_execute_and_explain(self):
        session = _session()
        assert session.execute("S1(x,y)").algorithm == "hypercube"
        assert session.explain("S1(x,y)").algorithm == "hypercube"


class TestErrors:
    def test_unknown_relation_is_a_structured_query_error(self):
        session = _session()
        with pytest.raises(QueryError, match="unknown relation 'S9'"):
            session.query("S1(x,y), S9(y,z)").execute()

    def test_arity_mismatch_is_a_structured_query_error(self):
        session = _session()
        with pytest.raises(QueryError, match="arity mismatch for S1"):
            session.query("S1(x,y,z)").execute()
        with pytest.raises(QueryError, match="arity mismatch"):
            session.query("S1(x)").explain()

    def test_unknown_algorithm_pin_raises(self):
        session = _session()
        with pytest.raises(QueryError, match="unknown algorithm"):
            session.query("S1(x,y)", algorithm="quantum").execute()

    def test_capacity_failures_propagate(self):
        session = connect(
            matching_database(VOCAB, n=40, rng=7),
            p=8,
            capacity_c=0.001,
            enforce_capacity=True,
        )
        with pytest.raises(CapacityExceeded):
            session.query("S1(x,y), S2(y,z)").execute()
        # the session survives and keeps serving
        with pytest.raises(CapacityExceeded):
            session.query("S1(x,y), S2(y,z)").execute()


class TestPlannerIntegration:
    def test_decisions_are_cached_per_version(self):
        session = _session()
        statement = session.query("S1(x,y), S2(y,z)")
        statement.execute()
        statement.execute()
        assert session.planner_stats.decisions == 1
        assert session.planner_stats.decision_cache_hits == 1
        session.update(inserts={"S1": [(1, 1)]})
        statement.execute()
        assert session.planner_stats.decisions == 2

    def test_session_default_eps_applies_to_statements(self, triangle):
        database = matching_database(triangle, n=40, rng=0)
        session = connect(database, p=16, eps=Fraction(0))
        # eps=0 is below C3's space exponent: one-round is ineligible.
        assert session.query(triangle).explain().algorithm == "multiround"
        # per-statement eps=None restores automatic choice
        assert (
            session.query(triangle, eps=None).explain().algorithm
            == "hypercube"
        )

    def test_algorithm_pin_round_trips_through_result(self):
        session = _session()
        result = session.query(
            "S1(x,y), S2(y,z)", algorithm="multiround"
        ).execute()
        assert result.algorithm == "multiround"
        assert result.explain.pinned


class TestBoundedCaches:
    """Satellite: capped caches still hit hot (isomorphic) queries."""

    HOT = ("S1(x,y), S2(y,z)", "S1(a,b), S2(b,c)", "S2(u,v), S3(v,w)")

    def test_capped_plan_cache_still_hits_hot_isomorphic_queries(self):
        session = _session(plan_cache_size=4)
        for _ in range(3):
            for text in self.HOT:
                session.query(text).execute()
        stats = session.stats.plans
        # every two-atom chain is ONE isomorphism class (the rebind
        # maps relation names too): a single compile serves all nine
        # requests within the 4-entry cap.
        assert stats.misses == 1
        assert stats.isomorphic_hits >= 2
        assert stats.hits >= 6

    def test_plan_cache_evictions_are_counted(self):
        session = _session(plan_cache_size=1)
        # alternate two structurally different queries so the 1-entry
        # cache must thrash (no isomorphic rescue possible)
        session.query("S1(x,y), S2(y,z)").execute()
        session.query("S1(x,y), S2(y,z), S3(z,x)").execute()
        session.query("S1(x,y), S2(y,z)").execute()
        assert session.stats.plans.evictions >= 2
        assert session.stats.plans.misses == 3  # thrashing recompiles

    def test_result_cache_evictions_are_counted(self):
        session = _session(result_cache_size=1)
        session.query("S1(x,y), S2(y,z)").execute()
        session.query("S2(x,y), S3(y,z)").execute()
        assert session.stats.result_evictions >= 1

    def test_routing_cache_evictions_are_counted(self):
        session = _session(routing_cache_size=1)
        session.query("S1(x,y), S2(y,z)").execute()
        session.query("S2(x,y), S3(y,z)").execute()
        assert session.stats.routing_evictions >= 1

    def test_capped_result_cache_still_memoizes_the_hot_query(self):
        session = _session(result_cache_size=2)
        for _ in range(3):
            session.query("S1(x,y), S2(y,z)").execute()
        assert session.stats.result_hits == 2
        assert session.stats.executions == 1


class TestReviewRegressions:
    def test_zero_size_planner_caches_disable_instead_of_crashing(self):
        session = _session(decision_cache_size=0, profile_cache_size=0)
        statement = session.query("S1(x,y), S2(y,z)")
        assert len(statement.execute()) == 60
        statement.execute()
        # no decision cache: every execution re-plans
        assert session.planner_stats.decisions == 2
        assert session.planner_stats.decision_cache_hits == 0
        session.update(inserts={"S1": [(1, 1)]})  # purge paths survive
        session.close()

    def test_session_level_algorithm_pin(self):
        session = _session(algorithm="multiround")
        result = session.query("S1(x,y), S2(y,z)").execute()
        assert result.algorithm == "multiround"
        # statement-level pin still overrides the session default
        override = session.query(
            "S1(x,y), S2(y,z)", algorithm="hypercube"
        ).execute()
        assert override.algorithm == "hypercube"

    def test_session_rejects_unknown_default_algorithm(self):
        with pytest.raises(QueryError, match="unknown algorithm"):
            _session(algorithm="quantum")

    def test_internal_experiment_harnesses_do_not_warn(self):
        import warnings

        from repro.algorithms.witness import run_witness_experiment

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_witness_experiment(n=20, p=4, eps=0.25, seed=0)
