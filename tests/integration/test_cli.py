"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestAnalyze:
    def test_triangle(self, capsys):
        code = main(["analyze", "S1(x,y), S2(y,z), S3(z,x)"])
        output = capsys.readouterr().out
        assert code == 0
        assert "3/2" in output
        assert "1/3" in output
        assert "tree-like" in output

    def test_disconnected_query_analyzed(self, capsys):
        code = main(["analyze", "R(x,y), S(u,v)"])
        assert code == 0
        output = capsys.readouterr().out
        assert "tau*" in output

    def test_malformed_query_errors(self, capsys):
        code = main(["analyze", "garbage("])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_verified_run(self, capsys):
        code = main(
            ["run", "S1(x,y), S2(y,z)", "--n", "30", "--p", "4"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "True" in output
        assert "answers" in output


class TestPlan:
    def test_depth_printed(self, capsys):
        code = main(
            ["plan", "S1(a,b), S2(b,c), S3(c,d), S4(d,e)", "--eps", "0"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "depth 2" in output
        assert "round 1" in output

    def test_eps_fraction_parsing(self, capsys):
        code = main(
            ["plan", "S1(a,b), S2(b,c), S3(c,d), S4(d,e)", "--eps", "1/2"]
        )
        assert code == 0
        assert "depth 1" in capsys.readouterr().out

    def test_bad_eps_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "S1(a,b)", "--eps", "nope"])


class TestRunPlan:
    def test_executes_and_verifies(self, capsys):
        code = main(
            [
                "run-plan",
                "S1(a,b), S2(b,c), S3(c,d), S4(d,e)",
                "--eps", "0", "--n", "40", "--p", "8",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "plan depth" in output
        assert "rounds used" in output
        assert "True" in output
        assert "view |" in output

    @pytest.mark.parametrize("backend", ["pure", "numpy", "auto"])
    def test_backend_flag(self, capsys, backend):
        from repro.backend import numpy_available

        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy backend unavailable")
        code = main(
            [
                "run-plan",
                "S1(a,b), S2(b,c), S3(c,d)",
                "--eps", "1/2", "--n", "30", "--p", "4",
                "--backend", backend,
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "verified vs exact join" in output

    def test_disconnected_query_errors(self, capsys):
        code = main(["run-plan", "R(x,y), S(u,v)"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSkew:
    def test_detects_heavy_hitter_and_verifies(self, capsys):
        code = main(
            [
                "skew",
                "S1(x,y), S2(y,z)",
                "--n", "120", "--p", "16",
                "--heavy-fraction", "0.5",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "heavy hitters" in output
        assert "True" in output
        assert "skew-aware max load" in output

    @pytest.mark.parametrize("backend", ["pure", "numpy"])
    def test_backend_flag(self, capsys, backend):
        from repro.backend import numpy_available

        if backend == "numpy" and not numpy_available():
            pytest.skip("numpy backend unavailable")
        code = main(
            [
                "skew",
                "S1(x,y), S2(y,z)",
                "--n", "80", "--p", "8",
                "--backend", backend,
            ]
        )
        assert code == 0
        assert backend in capsys.readouterr().out


class TestShares:
    def test_cube_allocation(self, capsys):
        code = main(
            ["shares", "S1(x,y), S2(y,z), S3(z,x)", "--p", "27"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "27 servers" in output


class TestTables:
    def test_tables_regenerate(self, capsys):
        code = main(["tables", "--n", "20", "--trials", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in output
        assert "Table 2" in output
        assert "True" in output  # matches_paper column


class TestProfileFlag:
    def test_run_prints_breakdown(self, capsys):
        code = main(
            ["run", "S1(x,y), S2(y,z)", "--n", "30", "--p", "4",
             "--profile"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "timing breakdown" in output
        for phase in ("route", "ship", "deliver", "local"):
            assert phase in output

    def test_run_plan_prints_breakdown(self, capsys):
        code = main(
            ["run-plan", "S1(a,b), S2(b,c), S3(c,d)", "--eps", "0",
             "--n", "20", "--p", "4", "--profile"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "plan timing breakdown" in output

    def test_skew_prints_both_breakdowns(self, capsys):
        code = main(
            ["skew", "S1(x,y), S2(y,z)", "--n", "40", "--p", "4",
             "--profile"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "plain HC timing breakdown" in output
        assert "skew-aware timing breakdown" in output

    def test_no_breakdown_without_flag(self, capsys):
        code = main(["run", "S1(x,y), S2(y,z)", "--n", "30", "--p", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "timing breakdown" not in output


class TestServe:
    def _script(self, tmp_path, lines):
        path = tmp_path / "script.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_run_update_stats_script(self, capsys, tmp_path):
        script = self._script(
            tmp_path,
            [
                "# comment and blank lines are skipped",
                "",
                "run S1(x,y), S2(y,z)",
                "run S1(x,y), S2(y,z)",
                "run S2(a,b), S1(b,c)",
                "update S1 1,2 3,4",
                "run S1(x,y), S2(y,z)",
                "delete S1 1,2",
                "stats",
                "exit",
            ],
        )
        code = main(
            ["serve", "--script", script, "--n", "40", "--p", "4"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "serving" in output
        assert "result:hit" in output       # repeated query memoized
        assert "plan:hit result:miss" in output  # isomorphic variant
        assert "v1: updated 2 rows in S1" in output
        assert "v2: deleted 1 rows in S1" in output
        assert "result hits" in output      # stats table
        assert "plan misses (compiles)" in output

    def test_errors_do_not_kill_the_loop(self, capsys, tmp_path):
        script = self._script(
            tmp_path,
            [
                "run garbage(",
                "frobnicate",
                "update",
                "run S1(x,y)",
                "exit",
            ],
        )
        code = main(["serve", "--script", script, "--n", "20", "--p", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("error:") == 3
        assert "answers in" in output  # the valid query still ran

    def test_update_reflects_in_answers(self, capsys, tmp_path):
        script = self._script(
            tmp_path,
            [
                "run S1(x,y)",
                "update S1 7,9",
                "run S1(x,y)",
                "exit",
            ],
        )
        code = main(["serve", "--script", script, "--n", "10", "--p", "2"])
        output = capsys.readouterr().out
        assert code == 0
        counts = [
            int(line.split()[0])
            for line in output.splitlines()
            if "answers in" in line
        ]
        assert counts[1] == counts[0] + 1

    def test_bad_updates_report_errors_without_crashing(
        self, capsys, tmp_path
    ):
        script = self._script(
            tmp_path,
            [
                "delete Nope 1,2",      # unknown relation (DataError)
                "update S1 1,2,3",      # wrong arity (DataError)
                "update S1 0,1",        # value below domain (DataError)
                "run S1(x,y)",
                "exit",
            ],
        )
        code = main(["serve", "--script", script, "--n", "20", "--p", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("error:") == 3
        assert "answers in" in output


class TestQueryCommand:
    """The planner-backed front door from the command line."""

    def test_matching_database_routes_to_hypercube(self, capsys):
        code = main(["query", "S1(x,y), S2(y,z)", "--n", "80", "--p", "8"])
        output = capsys.readouterr().out
        assert code == 0
        assert "chosen algorithm         hypercube" in output
        assert "verified vs exact join   True" in output

    def test_skewed_database_routes_to_skew_aware(self, capsys):
        code = main(
            ["query", "S1(x,y), S2(y,z)", "--skewed", "--n", "150"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "skewaware" in output
        assert "verified vs exact join   True" in output

    def test_long_chain_routes_to_multiround(self, capsys):
        code = main(
            [
                "query",
                "S1(a,b), S2(b,c), S3(c,d), S4(d,e), S5(e,f), S6(f,g)",
                "--n", "60",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "multiround" in output
        assert "verified vs exact join   True" in output

    def test_algorithm_pin(self, capsys):
        code = main(
            ["query", "S1(x,y), S2(y,z)", "--algorithm", "multiround",
             "--n", "40"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "multiround (pinned)" in output

    def test_partial_route_with_low_eps(self, capsys):
        code = main(
            ["query", "S1(x,y), S2(y,z), S3(z,x)", "--eps", "0",
             "--allow-partial", "--n", "60"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "partial" in output
        assert "n/a (partial answers)" in output

    def test_malformed_query_errors_cleanly(self, capsys):
        code = main(["query", "S1(x", "--n", "20"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_report_shows_bids_and_bounds(self, capsys):
        code = main(["explain", "S1(x,y), S2(y,z)", "--n", "60"])
        output = capsys.readouterr().out
        assert code == 0
        assert "planner bids (chosen first)" in output
        assert "tau* (covering number)" in output
        assert "space exponent (Thm 1.1)" in output
        assert "hypercube" in output and "multiround" in output

    def test_pinned_eps_changes_the_choice(self, capsys):
        code = main(
            ["explain", "S1(x,y), S2(y,z), S3(z,x)", "--eps", "0",
             "--n", "60"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "chosen algorithm                   multiround" in output
        assert "Theorem 3.3" in output  # HC's ineligibility reason


class TestServeErrorRegressions:
    """Regression: bad statements must never kill the REPL loop.

    An arity-mismatched query used to escape the error handling as a
    raw IndexError traceback (killing the whole process); an unknown
    relation surfaced as a bare KeyError repr.  Both now come back as
    structured ``error:`` lines and the loop keeps serving.
    """

    def _script(self, tmp_path, lines):
        path = tmp_path / "script.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    @pytest.mark.parametrize("algorithm", ["hypercube", "multiround"])
    def test_arity_mismatch_reports_error_and_loop_survives(
        self, capsys, tmp_path, algorithm
    ):
        script = self._script(
            tmp_path,
            [
                "run S1(x,y,z)",     # arity 3 vs stored arity 2
                "run S1(x)",         # arity 1 vs stored arity 2
                "run S1(x,y)",       # still serving after the errors
                "exit",
            ],
        )
        code = main(
            ["serve", "--script", script, "--n", "20", "--p", "4",
             "--algorithm", algorithm]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("error: arity mismatch for S1") == 2
        assert "answers in" in output

    def test_unknown_relation_reports_structured_error(
        self, capsys, tmp_path
    ):
        script = self._script(
            tmp_path,
            ["run S1(x,y), S9(y,z)", "run S1(x,y)", "exit"],
        )
        code = main(["serve", "--script", script, "--n", "20", "--p", "4"])
        output = capsys.readouterr().out
        assert code == 0
        assert "error: unknown relation 'S9'" in output
        assert "answers in" in output

    def test_stats_reports_eviction_counters(self, capsys, tmp_path):
        script = self._script(
            tmp_path, ["run S1(x,y)", "stats", "exit"]
        )
        code = main(
            ["serve", "--script", script, "--n", "20", "--p", "4",
             "--plan-cache-size", "2", "--result-cache-size", "2"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "evictions (plan / routing / result)" in output


class TestServeTcpFlag:
    def test_parser_accepts_tcp_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--tcp", "0", "--host", "127.0.0.1",
             "--plan-cache-size", "64"]
        )
        assert args.tcp == 0
        assert args.host == "127.0.0.1"
        assert args.plan_cache_size == 64
