"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import (
    run_broadcast_join,
    run_hypercube,
    run_plan,
    run_single_server,
)
from repro.algorithms.localjoin import evaluate_query
from repro.core import (
    build_plan,
    covering_number,
    parse_query,
    round_upper_bound,
    space_exponent,
)
from repro.core.families import cycle_query, line_query
from repro.data.matching import matching_database


class TestAllAlgorithmsAgree:
    """HC, multi-round plans, broadcast and single-server all compute
    the same answer as the reference join."""

    @pytest.mark.parametrize(
        "text",
        [
            "S1(x,y), S2(y,z)",
            "S1(x,y), S2(y,z), S3(z,x)",
            "S1(x,y), S2(y,z), S3(z,w)",
            "R1(z,x1), P1(x1,y1), R2(z,x2), P2(x2,y2)",
        ],
        ids=["L2", "C3", "L3", "SP2"],
    )
    def test_agreement(self, text):
        query = parse_query(text)
        database = matching_database(query, n=30, rng=44)
        truth = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        assert run_hypercube(query, database, p=8, seed=1).answers == truth
        assert run_broadcast_join(query, database, p=4).answers == truth
        assert run_single_server(query, database).answers == truth
        eps = space_exponent(query)
        plan = build_plan(query, eps)
        assert run_plan(plan, database, p=8, seed=1).answers == truth


class TestFullPipeline:
    def test_analyse_plan_execute_verify(self):
        """The README workflow, asserted end to end."""
        query = cycle_query(6)
        assert covering_number(query) == 3
        assert space_exponent(query) == Fraction(2, 3)

        database = matching_database(query, n=24, rng=5)
        assert database.is_matching_database()

        plan = build_plan(query, Fraction(0))
        assert plan.depth <= round_upper_bound(query, Fraction(0))

        result = run_plan(plan, database, p=8, seed=5)
        truth = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        assert result.answers == truth
        assert result.rounds_used == plan.depth

    def test_one_round_vs_multi_round_communication(self):
        """Extra rounds buy lower per-round replication: the paper's
        central tradeoff, measured."""
        query = line_query(8)
        database = matching_database(query, n=64, rng=6)

        one_round = run_hypercube(query, database, p=16, seed=2)
        plan = build_plan(query, Fraction(0))
        multi_round = run_plan(plan, database, p=16, seed=2)

        assert one_round.answers == multi_round.answers
        assert one_round.report.num_rounds == 1
        assert multi_round.rounds_used == 3
        # One-round max load per round exceeds the multi-round's.
        assert (
            one_round.report.max_load_tuples
            > multi_round.report.max_load_tuples
        )


class TestExamplesRun:
    """Every example script executes cleanly (they self-verify)."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "quickstart",
            "drug_interactions",
            "triangle_counting",
            "multiround_chains",
            "connected_components",
            "witness_hunt",
        ],
    )
    def test_example(self, module_name, capsys):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / f"{module_name}.py"
        )
        spec = importlib.util.spec_from_file_location(module_name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        output = capsys.readouterr().out
        assert output.strip()
