"""Tests for the benchmark trend gate (benchmarks/trend.py)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_TREND_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "trend.py"
)


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend", _TREND_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(directory, name, payload):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps(payload), encoding="utf-8")


class TestSpeedupFields:
    def test_only_speedup_numerics_collected(self, trend):
        fields = trend.speedup_fields(
            {
                "speedup": 5.0,
                "segmented_speedup": 2,
                "seconds": 1.0,
                "speedup_note": "text",
            }
        )
        assert fields == {"speedup": 5.0, "segmented_speedup": 2.0}

    def test_bench_parallel_payload_is_trended(self, trend):
        # The multi-process benchmark's perf claim rides the same
        # convention: its parallel_speedup field must be collected.
        fields = trend.speedup_fields(
            {
                "parallel_speedup": 3.4,
                "single_seconds": 2.0,
                "multi_seconds": 0.6,
                "speedup_gated": True,  # bool is not a perf claim
            }
        )
        assert fields == {"parallel_speedup": 3.4}


def _entry(fields, cores=None, gate_cores=None):
    return {"fields": fields, "cores": cores, "gate_cores": gate_cores}


class TestCompare:
    def test_within_tolerance_passes(self, trend):
        regressions, notes = trend.compare(
            {"BENCH_a.json": _entry({"speedup": 5.0})},
            {"BENCH_a.json": _entry({"speedup": 4.5})},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("BENCH_a.json:speedup" in note for note in notes)

    def test_regression_beyond_tolerance_fails(self, trend):
        regressions, _ = trend.compare(
            {"BENCH_a.json": _entry({"speedup": 5.0})},
            {"BENCH_a.json": _entry({"speedup": 3.9})},
            tolerance=0.2,
        )
        assert len(regressions) == 1
        assert "BENCH_a.json:speedup" in regressions[0]

    def test_new_and_dropped_benchmarks_are_notes(self, trend):
        regressions, notes = trend.compare(
            {"BENCH_old.json": _entry({"speedup": 2.0})},
            {"BENCH_new.json": _entry({"speedup": 9.0})},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("previous run only" in note for note in notes)
        assert any("new benchmark" in note for note in notes)

    def test_core_count_change_skips_the_comparison(self, trend):
        # A 4-core baseline against a 1-core rerun would be a fake
        # regression; the file is skipped wholesale with a note.
        regressions, notes = trend.compare(
            {"BENCH_a.json": _entry({"speedup": 4.0}, cores=4)},
            {"BENCH_a.json": _entry({"speedup": 0.9}, cores=1)},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("cores changed (4 -> 1)" in note for note in notes)

    def test_below_gate_threshold_skips_the_comparison(self, trend):
        # BENCH_parallel.json recorded parallel_speedup 0.916 on a
        # 1-core runner: never a perf claim, never a baseline.
        entry = _entry({"parallel_speedup": 0.916}, cores=1, gate_cores=4)
        worse = _entry({"parallel_speedup": 0.5}, cores=1, gate_cores=4)
        regressions, notes = trend.compare(
            {"BENCH_parallel.json": entry},
            {"BENCH_parallel.json": worse},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("below the 4-core speedup gate" in note for note in notes)

    def test_missing_core_metadata_still_compares(self, trend):
        # Pre-cores artifacts keep trending: nothing proves the runs
        # differ, and dropping coverage silently would be worse.
        regressions, _ = trend.compare(
            {"BENCH_a.json": _entry({"speedup": 5.0})},
            {"BENCH_a.json": _entry({"speedup": 1.0}, cores=4)},
            tolerance=0.2,
        )
        assert len(regressions) == 1

    def test_at_or_above_gate_compares(self, trend):
        regressions, _ = trend.compare(
            {"BENCH_a.json": _entry({"speedup": 4.0}, cores=4, gate_cores=4)},
            {"BENCH_a.json": _entry({"speedup": 1.0}, cores=4, gate_cores=4)},
            tolerance=0.2,
        )
        assert len(regressions) == 1


class TestCollect:
    def test_collect_reads_cores_and_gate(self, trend, tmp_path):
        _write(
            tmp_path,
            "BENCH_x.json",
            {"speedup": 3.0, "cores": 2, "speedup_gate_cores": 4},
        )
        _write(tmp_path, "BENCH_y.json", {"seconds": 1.0})  # no claim
        collected = trend.collect(str(tmp_path))
        assert collected == {
            "BENCH_x.json": {
                "fields": {"speedup": 3.0},
                "cores": 2,
                "gate_cores": 4,
            }
        }


class TestMain:
    def test_missing_previous_directory_passes(self, trend, tmp_path, capsys):
        current = tmp_path / "current"
        _write(current, "BENCH_x.json", {"speedup": 4.0})
        code = trend.main(
            ["--previous", str(tmp_path / "missing"), "--current", str(current)]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, trend, tmp_path, capsys):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 10.0})
        _write(current, "BENCH_x.json", {"speedup": 5.0})
        code = trend.main(
            ["--previous", str(previous), "--current", str(current)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_healthy_run_exits_zero(self, trend, tmp_path):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 10.0})
        _write(current, "BENCH_x.json", {"speedup": 9.5})
        assert (
            trend.main(
                ["--previous", str(previous), "--current", str(current)]
            )
            == 0
        )

    def test_unreadable_json_is_skipped(self, trend, tmp_path, capsys):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 1.0})
        _write(current, "BENCH_x.json", {"speedup": 1.0})
        (current / "BENCH_broken.json").write_text("{", encoding="utf-8")
        assert (
            trend.main(
                ["--previous", str(previous), "--current", str(current)]
            )
            == 0
        )
        assert "skipping unreadable" in capsys.readouterr().out
