"""Tests for the benchmark trend gate (benchmarks/trend.py)."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_TREND_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "trend.py"
)


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend", _TREND_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(directory, name, payload):
    directory.mkdir(exist_ok=True)
    (directory / name).write_text(json.dumps(payload), encoding="utf-8")


class TestSpeedupFields:
    def test_only_speedup_numerics_collected(self, trend):
        fields = trend.speedup_fields(
            {
                "speedup": 5.0,
                "segmented_speedup": 2,
                "seconds": 1.0,
                "speedup_note": "text",
            }
        )
        assert fields == {"speedup": 5.0, "segmented_speedup": 2.0}

    def test_bench_parallel_payload_is_trended(self, trend):
        # The multi-process benchmark's perf claim rides the same
        # convention: its parallel_speedup field must be collected.
        fields = trend.speedup_fields(
            {
                "parallel_speedup": 3.4,
                "single_seconds": 2.0,
                "multi_seconds": 0.6,
                "speedup_gated": True,  # bool is not a perf claim
            }
        )
        assert fields == {"parallel_speedup": 3.4}


class TestCompare:
    def test_within_tolerance_passes(self, trend):
        regressions, notes = trend.compare(
            {"BENCH_a.json": {"speedup": 5.0}},
            {"BENCH_a.json": {"speedup": 4.5}},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("BENCH_a.json:speedup" in note for note in notes)

    def test_regression_beyond_tolerance_fails(self, trend):
        regressions, _ = trend.compare(
            {"BENCH_a.json": {"speedup": 5.0}},
            {"BENCH_a.json": {"speedup": 3.9}},
            tolerance=0.2,
        )
        assert len(regressions) == 1
        assert "BENCH_a.json:speedup" in regressions[0]

    def test_new_and_dropped_benchmarks_are_notes(self, trend):
        regressions, notes = trend.compare(
            {"BENCH_old.json": {"speedup": 2.0}},
            {"BENCH_new.json": {"speedup": 9.0}},
            tolerance=0.2,
        )
        assert regressions == []
        assert any("previous run only" in note for note in notes)
        assert any("new benchmark" in note for note in notes)


class TestMain:
    def test_missing_previous_directory_passes(self, trend, tmp_path, capsys):
        current = tmp_path / "current"
        _write(current, "BENCH_x.json", {"speedup": 4.0})
        code = trend.main(
            ["--previous", str(tmp_path / "missing"), "--current", str(current)]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, trend, tmp_path, capsys):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 10.0})
        _write(current, "BENCH_x.json", {"speedup": 5.0})
        code = trend.main(
            ["--previous", str(previous), "--current", str(current)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_healthy_run_exits_zero(self, trend, tmp_path):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 10.0})
        _write(current, "BENCH_x.json", {"speedup": 9.5})
        assert (
            trend.main(
                ["--previous", str(previous), "--current", str(current)]
            )
            == 0
        )

    def test_unreadable_json_is_skipped(self, trend, tmp_path, capsys):
        previous = tmp_path / "previous"
        current = tmp_path / "current"
        _write(previous, "BENCH_x.json", {"speedup": 1.0})
        _write(current, "BENCH_x.json", {"speedup": 1.0})
        (current / "BENCH_broken.json").write_text("{", encoding="utf-8")
        assert (
            trend.main(
                ["--previous", str(previous), "--current", str(current)]
            )
            == 0
        )
        assert "skipping unreadable" in capsys.readouterr().out
