"""Unit tests for power-law fits and ASCII curves."""

from __future__ import annotations

import math

import pytest

from repro.analysis.figures import (
    ascii_curve,
    fit_power_law,
    slope_matches,
)


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        xs = [2, 4, 8, 16, 32]
        ys = [5.0 * x ** -1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(-1.5)
        assert math.exp(fit.intercept) == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_close(self):
        import random

        rng = random.Random(0)
        xs = [2 ** i for i in range(1, 9)]
        ys = [x ** -1.0 * (1 + 0.1 * (rng.random() - 0.5)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.slope + 1.0) < 0.1
        assert fit.r_squared > 0.99

    def test_zero_values_dropped(self):
        fit = fit_power_law([1, 2, 4, 8], [1.0, 0.5, 0.0, 0.125])
        assert fit.slope == pytest.approx(-1.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0.0, 0.0])

    def test_identical_x_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1.0, 2.0])


class TestSlopeMatches:
    def test_within_tolerance(self):
        fit = fit_power_law([2, 4, 8], [1 / 2, 1 / 4, 1 / 8])
        assert slope_matches(fit, -1.0)
        assert not slope_matches(fit, -2.0)


class TestAsciiCurve:
    def test_contains_markers_and_bounds(self):
        text = ascii_curve(
            [1, 2, 3],
            {"measured": [3.0, 2.0, 1.0], "theory": [3.0, 1.5, 1.0]},
            width=20,
            height=6,
            title="decay",
        )
        assert "decay" in text
        assert "m" in text and "t" in text
        assert "x: [1, 3]" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_curve([], {"a": []})
        with pytest.raises(ValueError):
            ascii_curve([1], {"a": []})

    def test_flat_series_renders(self):
        text = ascii_curve([1, 2], {"flat": [1.0, 1.0]})
        assert "f" in text
