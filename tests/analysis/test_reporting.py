"""Tests for the table renderer."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]
        # All rows align on the second column.
        positions = {line.rstrip().rfind(" ") for line in lines[2:]}
        assert len(positions) >= 1

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
