"""Small-scale smoke + shape tests for the experiment sweeps."""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.experiments import (
    sweep_cartesian_tradeoff,
    sweep_components_rounds,
    sweep_hc_load,
    sweep_multiround_rounds,
    sweep_one_round_fraction,
    sweep_witness,
)
from repro.core.families import cycle_query, line_query


class TestHCLoadSweep:
    def test_ratio_stays_bounded(self):
        rows = sweep_hc_load(
            cycle_query(3), n=100, p_values=(4, 16), trials=2, seed=1
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.1 <= row["ratio"] <= 3.0

    def test_load_decreases_with_p(self):
        rows = sweep_hc_load(
            line_query(2), n=200, p_values=(4, 64), trials=2, seed=2
        )
        assert rows[0]["max_load_tuples"] > rows[1]["max_load_tuples"]


class TestFractionSweep:
    def test_fraction_decreases_with_p(self):
        rows = sweep_one_round_fraction(
            line_query(3),
            eps=Fraction(0),
            n=100,
            p_values=(4, 32),
            trials=3,
            seed=3,
        )
        assert rows[0]["measured_fraction"] > rows[1]["measured_fraction"]

    def test_theory_column_matches_formula(self):
        rows = sweep_one_round_fraction(
            line_query(3),
            eps=Fraction(0),
            n=50,
            p_values=(16,),
            trials=1,
            seed=0,
        )
        assert rows[0]["theory_fraction"] == 1 / 16


class TestMultiroundSweep:
    def test_measured_rounds_match_paper(self):
        rows = sweep_multiround_rounds(
            k_values=(4, 8),
            eps_values=(Fraction(0),),
            n=30,
            p=4,
            seed=0,
        )
        for row in rows:
            assert row["rounds_measured"] == row["paper_rounds"]
            assert row["lower_bound"] <= row["rounds_measured"]
            assert row["rounds_measured"] <= row["upper_bound"]


class TestComponentsSweep:
    def test_sparse_grows_dense_constant(self):
        rows = sweep_components_rounds(
            p_values=(4, 64), layer_size=8, seed=0
        )
        assert rows[-1]["sparse_rounds"] >= rows[0]["sparse_rounds"]
        assert all(row["dense_rounds"] == 2 for row in rows)


class TestWitnessSweep:
    def test_rows_have_theory_column(self):
        rows = sweep_witness(
            n=49, p_values=(2, 4), trials=4, seed=0
        )
        assert len(rows) == 2
        assert rows[0]["theory_chain_fraction"] > rows[1]["theory_chain_fraction"]


class TestCartesianSweep:
    def test_invariant_product(self):
        rows = sweep_cartesian_tradeoff(
            n=64, p=16, group_values=(1, 2, 4), seed=0
        )
        for row in rows:
            # replication * reducer-size ~ 2n (the tradeoff identity).
            assert row["replication_rate"] * row["theory_reducer"] == 128
