"""Tests for Table 1 / Table 2 regeneration."""

from __future__ import annotations

from fractions import Fraction

from repro.analysis.tables import (
    table1_rows,
    table2_rows,
    tradeoff_curve,
)


class TestTable1:
    def test_every_row_matches_paper(self):
        rows = table1_rows(n=40, trials=3, seed=1)
        assert rows
        assert all(row.matches_paper for row in rows)

    def test_line_and_star_measured_exactly_n(self):
        rows = {row.name: row for row in table1_rows(n=40, trials=3, seed=2)}
        # chi = 0 families have exactly n answers on every matching db.
        assert rows["T3"].measured_answer_size == 40
        assert rows["L3"].measured_answer_size == 40
        assert rows["L4"].measured_answer_size == 40

    def test_cycle_measured_near_one(self):
        rows = {row.name: row for row in table1_rows(n=40, trials=5, seed=3)}
        assert rows["C3"].expected_answer_size == 1.0
        assert rows["C3"].measured_answer_size < 10

    def test_share_exponents_normalised(self):
        for row in table1_rows(n=20, trials=1, seed=0):
            assert sum(row.share_exponents.values()) == 1


class TestTable2:
    def test_rows_match_paper_at_eps_zero(self):
        for row in table2_rows():
            if row.paper_rounds_at_zero is not None:
                assert row.rounds_at_zero == row.paper_rounds_at_zero

    def test_rounds_decrease_with_eps(self):
        for row in table2_rows():
            depths = [
                row.rounds_by_eps[eps]
                for eps in sorted(row.rounds_by_eps)
            ]
            assert depths == sorted(depths, reverse=True)

    def test_depth_never_exceeds_upper_bound(self):
        for row in table2_rows():
            assert row.rounds_at_zero <= row.upper_bound_at_zero


class TestTradeoffCurve:
    def test_l16_curve(self):
        curve = tradeoff_curve(
            16, (Fraction(0), Fraction(1, 2), Fraction(3, 4))
        )
        depths = [depth for _, depth, _ in curve]
        assert depths[0] == 4
        assert depths == sorted(depths, reverse=True)
        bases = [base for _, _, base in curve]
        assert bases == [2, 4, 8]
