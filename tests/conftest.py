"""Shared fixtures: canonical queries and small databases."""

from __future__ import annotations

import random

import pytest

from repro.core.families import (
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.query import parse_query
from repro.data.matching import matching_database


@pytest.fixture
def triangle():
    """The C3 cycle query."""
    return cycle_query(3)


@pytest.fixture
def chain4():
    """The L4 line query."""
    return line_query(4)


@pytest.fixture
def star3():
    """The T3 star query."""
    return star_query(3)


@pytest.fixture
def spider2():
    """The SP2 spider query."""
    return spider_query(2)


@pytest.fixture
def two_hop():
    """The paper's L2 = S1(x,y), S2(y,z)."""
    return parse_query("q(x,y,z) = S1(x,y), S2(y,z)")


@pytest.fixture
def rng():
    """A deterministic RNG for data generation."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def triangle_db(triangle):
    """A small matching database for C3."""
    return matching_database(triangle, n=40, rng=7)


@pytest.fixture
def chain4_db(chain4):
    """A small matching database for L4."""
    return matching_database(chain4, n=40, rng=13)
