"""Unit tests for hash families and hypercube addressing."""

from __future__ import annotations

import pytest

from repro.mpc.routing import (
    HashFamily,
    grid_coordinates,
    grid_rank,
    grid_size,
    splitmix64,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_spreads_consecutive_inputs(self):
        outputs = {splitmix64(i) % 64 for i in range(64)}
        assert len(outputs) > 32  # no obvious clustering

    def test_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(value) < 2**64


class TestHashFamily:
    def test_range(self):
        family = HashFamily(seed=1)
        for value in range(1, 200):
            assert 0 <= family.hash_value("x", value, 7) < 7

    def test_single_bucket_constant(self):
        family = HashFamily(seed=1)
        assert family.hash_value("x", 123, 1) == 0

    def test_deterministic_across_instances(self):
        a = HashFamily(seed=9)
        b = HashFamily(seed=9)
        assert all(
            a.hash_value("x", v, 16) == b.hash_value("x", v, 16)
            for v in range(50)
        )

    def test_dimensions_differ(self):
        family = HashFamily(seed=3)
        same = sum(
            family.hash_value("x", v, 16) == family.hash_value("y", v, 16)
            for v in range(200)
        )
        assert same < 50  # ~1/16 expected agreement

    def test_seeds_differ(self):
        a = HashFamily(seed=1)
        b = HashFamily(seed=2)
        same = sum(
            a.hash_value("x", v, 16) == b.hash_value("x", v, 16)
            for v in range(200)
        )
        assert same < 50

    def test_roughly_uniform(self):
        family = HashFamily(seed=4)
        buckets = [0] * 8
        for value in range(1, 801):
            buckets[family.hash_value("x", value, 8)] += 1
        assert max(buckets) < 2 * min(buckets)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            HashFamily().hash_value("x", 1, 0)


class TestGrid:
    def test_rank_roundtrip(self):
        dims = (3, 4, 2)
        for rank in range(grid_size(dims)):
            assert grid_rank(grid_coordinates(rank, dims), dims) == rank

    def test_rank_row_major(self):
        assert grid_rank((0, 0), (2, 3)) == 0
        assert grid_rank((0, 1), (2, 3)) == 1
        assert grid_rank((1, 0), (2, 3)) == 3

    def test_rank_validates(self):
        with pytest.raises(ValueError):
            grid_rank((2,), (2,))
        with pytest.raises(ValueError, match="mismatch"):
            grid_rank((0, 0), (2,))

    def test_coordinates_validates(self):
        with pytest.raises(ValueError):
            grid_coordinates(6, (2, 3))

    def test_grid_size(self):
        assert grid_size((2, 3, 4)) == 24
        assert grid_size(()) == 1


class TestHashColumn:
    """The batched hash path must be bit-identical to the scalar one."""

    @staticmethod
    def _require_numpy():
        from repro.backend import numpy_or_none

        numpy = numpy_or_none()
        if numpy is None:
            pytest.skip("numpy backend unavailable")
        return numpy

    def test_pure_sequence_matches_scalar(self):
        family = HashFamily(seed=11)
        values = list(range(1, 300))
        batched = family.hash_column("x", values, 7)
        assert batched == [
            family.hash_value("x", value, 7) for value in values
        ]

    def test_numpy_matches_scalar(self):
        numpy = self._require_numpy()
        family = HashFamily(seed=0xDECAF)
        values = numpy.arange(1, 5000, dtype=numpy.int64)
        batched = family.hash_column("y", values, 13)
        assert batched.dtype == numpy.int64
        assert batched.tolist() == [
            family.hash_value("y", int(value), 13) for value in values
        ]

    def test_single_bucket_all_zero(self):
        family = HashFamily(seed=5)
        assert family.hash_column("x", [4, 5, 6], 1) == [0, 0, 0]

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            HashFamily().hash_column("x", [1], 0)

    def test_dimension_key_is_process_independent(self):
        import subprocess
        import sys

        probe = (
            "from repro.mpc.routing import HashFamily;"
            "print(HashFamily(seed=3).hash_value('x', 12345, 1000))"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", probe],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        assert int(runs.pop()) == HashFamily(seed=3).hash_value(
            "x", 12345, 1000
        )


class TestGridRankColumns:
    def test_matches_scalar_pure(self):
        from repro.mpc.routing import grid_rank_columns

        dims = (3, 4, 2)
        coords = [(i % 3, (i * 7) % 4, i % 2) for i in range(24)]
        columns = [list(column) for column in zip(*coords)]
        assert grid_rank_columns(columns, dims) == [
            grid_rank(row, dims) for row in coords
        ]

    def test_matches_scalar_numpy(self):
        numpy = TestHashColumn._require_numpy()
        from repro.mpc.routing import grid_rank_columns

        dims = (5, 3, 7)
        rng = numpy.random.default_rng(0)
        columns = [
            rng.integers(0, size, 100, dtype=numpy.int64) for size in dims
        ]
        expected = [
            grid_rank(row, dims) for row in zip(*[c.tolist() for c in columns])
        ]
        assert grid_rank_columns(columns, dims).tolist() == expected

    def test_length_mismatch_rejected(self):
        from repro.mpc.routing import grid_rank_columns

        with pytest.raises(ValueError, match="mismatch"):
            grid_rank_columns([[0]], (2, 2))
