"""Unit tests for hash families and hypercube addressing."""

from __future__ import annotations

import pytest

from repro.mpc.routing import (
    HashFamily,
    grid_coordinates,
    grid_rank,
    grid_size,
    splitmix64,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_spreads_consecutive_inputs(self):
        outputs = {splitmix64(i) % 64 for i in range(64)}
        assert len(outputs) > 32  # no obvious clustering

    def test_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(value) < 2**64


class TestHashFamily:
    def test_range(self):
        family = HashFamily(seed=1)
        for value in range(1, 200):
            assert 0 <= family.hash_value("x", value, 7) < 7

    def test_single_bucket_constant(self):
        family = HashFamily(seed=1)
        assert family.hash_value("x", 123, 1) == 0

    def test_deterministic_across_instances(self):
        a = HashFamily(seed=9)
        b = HashFamily(seed=9)
        assert all(
            a.hash_value("x", v, 16) == b.hash_value("x", v, 16)
            for v in range(50)
        )

    def test_dimensions_differ(self):
        family = HashFamily(seed=3)
        same = sum(
            family.hash_value("x", v, 16) == family.hash_value("y", v, 16)
            for v in range(200)
        )
        assert same < 50  # ~1/16 expected agreement

    def test_seeds_differ(self):
        a = HashFamily(seed=1)
        b = HashFamily(seed=2)
        same = sum(
            a.hash_value("x", v, 16) == b.hash_value("x", v, 16)
            for v in range(200)
        )
        assert same < 50

    def test_roughly_uniform(self):
        family = HashFamily(seed=4)
        buckets = [0] * 8
        for value in range(1, 801):
            buckets[family.hash_value("x", value, 8)] += 1
        assert max(buckets) < 2 * min(buckets)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            HashFamily().hash_value("x", 1, 0)


class TestGrid:
    def test_rank_roundtrip(self):
        dims = (3, 4, 2)
        for rank in range(grid_size(dims)):
            assert grid_rank(grid_coordinates(rank, dims), dims) == rank

    def test_rank_row_major(self):
        assert grid_rank((0, 0), (2, 3)) == 0
        assert grid_rank((0, 1), (2, 3)) == 1
        assert grid_rank((1, 0), (2, 3)) == 3

    def test_rank_validates(self):
        with pytest.raises(ValueError):
            grid_rank((2,), (2,))
        with pytest.raises(ValueError, match="mismatch"):
            grid_rank((0, 0), (2,))

    def test_coordinates_validates(self):
        with pytest.raises(ValueError):
            grid_coordinates(6, (2, 3))

    def test_grid_size(self):
        assert grid_size((2, 3, 4)) == 24
        assert grid_size(()) == 1
