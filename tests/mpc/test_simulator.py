"""Unit tests for the MPC simulator: rounds, delivery, capacity."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.mpc.model import MPCConfig
from repro.mpc.simulator import CapacityExceeded, MPCSimulator, ProtocolError


def make_simulator(p=4, eps=Fraction(0), c=1.0, input_bits=400, enforce=True):
    return MPCSimulator(
        MPCConfig(p=p, eps=eps, c=c),
        input_bits=input_bits,
        enforce_capacity=enforce,
    )


class TestRoundLifecycle:
    def test_round_indices_increment(self):
        simulator = make_simulator()
        assert simulator.begin_round() == 1
        simulator.end_round()
        assert simulator.begin_round() == 2

    def test_double_begin_rejected(self):
        simulator = make_simulator()
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="still open"):
            simulator.begin_round()

    def test_end_without_begin_rejected(self):
        with pytest.raises(ProtocolError, match="no round"):
            make_simulator().end_round()

    def test_send_outside_round_rejected(self):
        simulator = make_simulator()
        with pytest.raises(ProtocolError, match="outside"):
            simulator.send(0, 1, "R", [(1,)], 8)


class TestDelivery:
    def test_messages_delivered_at_round_end(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1, 2)], 8)
        # Not yet delivered mid-round.
        assert simulator.worker_rows(1, "R") == []
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1, 2)]

    def test_storage_accumulates_across_rounds(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1, 1)], 8)
        simulator.end_round()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(2, 2)], 8)
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1, 1), (2, 2)]

    def test_empty_send_is_noop(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [], 8)
        stats = simulator.end_round()
        assert stats.total_bits == 0

    def test_broadcast_reaches_everyone(self):
        simulator = make_simulator(p=3, eps=Fraction(1))
        simulator.begin_round()
        simulator.broadcast_from_input("R", [(1, 2)], 8)
        simulator.end_round()
        for worker in range(3):
            assert simulator.worker_rows(worker, "R") == [(1, 2)]


class TestEndpointValidation:
    def test_receiver_range_checked(self):
        simulator = make_simulator(p=2)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="receiver"):
            simulator.send(0, 5, "R", [(1,)], 8)

    def test_worker_sender_range_checked(self):
        simulator = make_simulator(p=2)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="sender"):
            simulator.send(7, 0, "R", [(1,)], 8)

    def test_input_server_silent_after_round_one(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send_from_input("R", 0, [(1,)], 8)
        simulator.end_round()
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="round 1"):
            simulator.send_from_input("R", 0, [(1,)], 8)

    def test_workers_may_send_any_round(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.end_round()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1,)], 8)
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1,)]


class TestCapacity:
    def test_overload_raises_with_details(self):
        # capacity = 1 * 400 / 4 = 100 bits; send 104.
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 14)], 8)
        with pytest.raises(CapacityExceeded) as info:
            simulator.end_round()
        assert info.value.worker == 1
        assert info.value.received_bits == 104
        assert info.value.round_index == 1

    def test_at_capacity_is_fine(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 13)], 8)
        stats = simulator.end_round()
        assert stats.max_received_bits == 96

    def test_enforcement_can_be_disabled(self):
        simulator = make_simulator(enforce=False)
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 100)], 8)
        stats = simulator.end_round()
        assert stats.max_received_bits > stats.capacity_bits

    def test_load_splits_across_receivers(self):
        simulator = make_simulator()
        simulator.begin_round()
        for worker in range(4):
            simulator.send(0, worker, "R", [(1, 1)], 8)
        stats = simulator.end_round()
        assert stats.received_bits == (8, 8, 8, 8)
        assert stats.load_imbalance == pytest.approx(1.0)


class TestStatsPlumbing:
    def test_report_aggregates_rounds(self):
        simulator = make_simulator(enforce=False)
        for _ in range(3):
            simulator.begin_round()
            simulator.send(0, 1, "R", [(1, 1)], 8)
            simulator.end_round()
        report = simulator.report
        assert report.num_rounds == 3
        assert report.total_bits == 24
        assert report.max_load_bits == 8
        assert "rounds=3" in report.summary()

    def test_replication_rate(self):
        simulator = make_simulator(p=2, eps=Fraction(1), input_bits=8)
        simulator.begin_round()
        simulator.broadcast_from_input("R", [(1, 1)], 8)
        simulator.end_round()
        assert simulator.report.replication_rate == pytest.approx(2.0)
