"""Unit tests for the MPC simulator: rounds, delivery, capacity."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.mpc.model import MPCConfig
from repro.mpc.simulator import CapacityExceeded, MPCSimulator, ProtocolError


def make_simulator(p=4, eps=Fraction(0), c=1.0, input_bits=400, enforce=True):
    return MPCSimulator(
        MPCConfig(p=p, eps=eps, c=c),
        input_bits=input_bits,
        enforce_capacity=enforce,
    )


class TestRoundLifecycle:
    def test_round_indices_increment(self):
        simulator = make_simulator()
        assert simulator.begin_round() == 1
        simulator.end_round()
        assert simulator.begin_round() == 2

    def test_double_begin_rejected(self):
        simulator = make_simulator()
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="still open"):
            simulator.begin_round()

    def test_end_without_begin_rejected(self):
        with pytest.raises(ProtocolError, match="no round"):
            make_simulator().end_round()

    def test_send_outside_round_rejected(self):
        simulator = make_simulator()
        with pytest.raises(ProtocolError, match="outside"):
            simulator.send(0, 1, "R", [(1,)], 8)


class TestDelivery:
    def test_messages_delivered_at_round_end(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1, 2)], 8)
        # Not yet delivered mid-round.
        assert simulator.worker_rows(1, "R") == []
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1, 2)]

    def test_storage_accumulates_across_rounds(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1, 1)], 8)
        simulator.end_round()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(2, 2)], 8)
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1, 1), (2, 2)]

    def test_empty_send_is_noop(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [], 8)
        stats = simulator.end_round()
        assert stats.total_bits == 0

    def test_broadcast_reaches_everyone(self):
        simulator = make_simulator(p=3, eps=Fraction(1))
        simulator.begin_round()
        simulator.broadcast_from_input("R", [(1, 2)], 8)
        simulator.end_round()
        for worker in range(3):
            assert simulator.worker_rows(worker, "R") == [(1, 2)]


class TestEndpointValidation:
    def test_receiver_range_checked(self):
        simulator = make_simulator(p=2)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="receiver"):
            simulator.send(0, 5, "R", [(1,)], 8)

    def test_worker_sender_range_checked(self):
        simulator = make_simulator(p=2)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="sender"):
            simulator.send(7, 0, "R", [(1,)], 8)

    def test_input_server_silent_after_round_one(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send_from_input("R", 0, [(1,)], 8)
        simulator.end_round()
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="round 1"):
            simulator.send_from_input("R", 0, [(1,)], 8)

    def test_workers_may_send_any_round(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.end_round()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(1,)], 8)
        simulator.end_round()
        assert simulator.worker_rows(1, "R") == [(1,)]


class TestCapacity:
    def test_overload_raises_with_details(self):
        # capacity = 1 * 400 / 4 = 100 bits; send 104.
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 14)], 8)
        with pytest.raises(CapacityExceeded) as info:
            simulator.end_round()
        assert info.value.worker == 1
        assert info.value.received_bits == 104
        assert info.value.round_index == 1

    def test_at_capacity_is_fine(self):
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 13)], 8)
        stats = simulator.end_round()
        assert stats.max_received_bits == 96

    def test_enforcement_can_be_disabled(self):
        simulator = make_simulator(enforce=False)
        simulator.begin_round()
        simulator.send(0, 1, "R", [(i, i) for i in range(1, 100)], 8)
        stats = simulator.end_round()
        assert stats.max_received_bits > stats.capacity_bits

    def test_load_splits_across_receivers(self):
        simulator = make_simulator()
        simulator.begin_round()
        for worker in range(4):
            simulator.send(0, worker, "R", [(1, 1)], 8)
        stats = simulator.end_round()
        assert stats.received_bits == (8, 8, 8, 8)
        assert stats.load_imbalance == pytest.approx(1.0)


class TestStatsPlumbing:
    def test_report_aggregates_rounds(self):
        simulator = make_simulator(enforce=False)
        for _ in range(3):
            simulator.begin_round()
            simulator.send(0, 1, "R", [(1, 1)], 8)
            simulator.end_round()
        report = simulator.report
        assert report.num_rounds == 3
        assert report.total_bits == 24
        assert report.max_load_bits == 8
        assert "rounds=3" in report.summary()

    def test_replication_rate(self):
        simulator = make_simulator(p=2, eps=Fraction(1), input_bits=8)
        simulator.begin_round()
        simulator.broadcast_from_input("R", [(1, 1)], 8)
        simulator.end_round()
        assert simulator.report.replication_rate == pytest.approx(2.0)


class TestColumnarSends:
    """The vectorized staging path: accounting, delivery, ground rules."""

    @staticmethod
    def _numpy():
        from repro.backend import numpy_or_none

        numpy = numpy_or_none()
        if numpy is None:
            pytest.skip("numpy backend unavailable")
        return numpy

    def _columns(self, numpy, rows):
        return tuple(
            numpy.asarray(column, dtype=numpy.int64)
            for column in zip(*rows)
        )

    def test_delivery_and_accounting(self):
        numpy = self._numpy()
        simulator = make_simulator(p=4, enforce=False)
        simulator.begin_round()
        receivers = numpy.asarray([1, 1, 2], dtype=numpy.int64)
        columns = self._columns(numpy, [(1, 2), (3, 4), (5, 6)])
        simulator.send_columns(0, receivers, "R", columns, bits_per_tuple=8)
        # Not delivered mid-round.
        assert simulator.worker_rows(1, "R") == []
        stats = simulator.end_round()
        assert stats.received_bits == (0, 16, 8, 0)
        assert stats.received_tuples == (0, 2, 1, 0)
        assert simulator.worker_rows(1, "R") == [(1, 2), (3, 4)]
        assert simulator.worker_rows(2, "R") == [(5, 6)]

    def test_row_indices_gather(self):
        numpy = self._numpy()
        simulator = make_simulator(p=3, enforce=False)
        simulator.begin_round()
        columns = self._columns(numpy, [(7, 8), (9, 10)])
        # Row 0 replicated to workers 0 and 2; row 1 to worker 1.
        receivers = numpy.asarray([0, 2, 1], dtype=numpy.int64)
        row_indices = numpy.asarray([0, 0, 1], dtype=numpy.int64)
        simulator.send_columns(
            0, receivers, "R", columns, bits_per_tuple=4,
            row_indices=row_indices,
        )
        stats = simulator.end_round()
        assert stats.received_tuples == (1, 1, 1)
        assert simulator.worker_rows(0, "R") == [(7, 8)]
        assert simulator.worker_rows(1, "R") == [(9, 10)]
        assert simulator.worker_rows(2, "R") == [(7, 8)]

    def test_capacity_exceeded_identical_to_row_path(self):
        numpy = self._numpy()
        rows = [(i, i) for i in range(1, 14)]  # 104 bits > 100 capacity
        row_sim = make_simulator()
        row_sim.begin_round()
        row_sim.send(0, 1, "R", rows, 8)
        with pytest.raises(CapacityExceeded) as row_info:
            row_sim.end_round()
        col_sim = make_simulator()
        col_sim.begin_round()
        col_sim.send_columns(
            0,
            numpy.full(len(rows), 1, dtype=numpy.int64),
            "R",
            self._columns(numpy, rows),
            bits_per_tuple=8,
        )
        with pytest.raises(CapacityExceeded) as col_info:
            col_sim.end_round()
        assert col_info.value.worker == row_info.value.worker == 1
        assert (
            col_info.value.received_bits
            == row_info.value.received_bits
            == 104
        )
        assert col_info.value.round_index == row_info.value.round_index

    def test_receiver_bounds_checked(self):
        numpy = self._numpy()
        simulator = make_simulator(p=2)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="receiver"):
            simulator.send_columns(
                0,
                numpy.asarray([5], dtype=numpy.int64),
                "R",
                self._columns(numpy, [(1,)]),
                bits_per_tuple=8,
            )

    def test_input_server_silent_after_round_one(self):
        numpy = self._numpy()
        simulator = make_simulator(eps=Fraction(1))
        simulator.begin_round()
        simulator.end_round()
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="round 1"):
            simulator.send_columns_from_input(
                "R",
                numpy.asarray([0], dtype=numpy.int64),
                self._columns(numpy, [(1,)]),
                bits_per_tuple=8,
            )

    def test_empty_send_is_noop(self):
        numpy = self._numpy()
        simulator = make_simulator()
        simulator.begin_round()
        simulator.send_columns(
            0,
            numpy.asarray([], dtype=numpy.int64),
            "R",
            (numpy.asarray([], dtype=numpy.int64),),
            bits_per_tuple=8,
        )
        assert simulator.end_round().total_bits == 0

    def test_column_batches_stay_columnar_until_read(self):
        numpy = self._numpy()
        simulator = make_simulator(p=2, enforce=False)
        simulator.begin_round()
        simulator.send_columns(
            0,
            numpy.asarray([1, 1], dtype=numpy.int64),
            "R",
            self._columns(numpy, [(1, 2), (3, 4)]),
            bits_per_tuple=8,
        )
        simulator.end_round()
        batches = simulator.worker_column_batches(1, "R")
        assert len(batches) == 1
        assert batches[0][0].tolist() == [1, 3]
        # The row view materialises the batches (once), and the
        # columnar view survives: both stay readable in any order.
        assert simulator.worker_rows(1, "R") == [(1, 2), (3, 4)]
        assert simulator.worker_rows(1, "R") == [(1, 2), (3, 4)]
        assert len(simulator.worker_column_batches(1, "R")) == 1

    def test_receiver_row_count_mismatch_rejected(self):
        numpy = self._numpy()
        simulator = make_simulator(p=4, enforce=False)
        simulator.begin_round()
        columns = self._columns(numpy, [(1, 2), (3, 4), (5, 6)])
        with pytest.raises(ProtocolError, match="one destination per row"):
            simulator.send_columns(
                0,
                numpy.asarray([1], dtype=numpy.int64),
                "R",
                columns,
                bits_per_tuple=8,
            )
        with pytest.raises(ProtocolError, match="one destination per row"):
            simulator.send_columns(
                0,
                numpy.asarray([1, 2], dtype=numpy.int64),
                "R",
                columns,
                bits_per_tuple=8,
                row_indices=numpy.asarray([0], dtype=numpy.int64),
            )

    def test_row_indices_bounds_checked(self):
        numpy = self._numpy()
        simulator = make_simulator(p=4, enforce=False)
        simulator.begin_round()
        with pytest.raises(ProtocolError, match="row_indices"):
            simulator.send_columns(
                0,
                numpy.asarray([1], dtype=numpy.int64),
                "R",
                self._columns(numpy, [(1, 2)]),
                bits_per_tuple=8,
                row_indices=numpy.asarray([7], dtype=numpy.int64),
            )

    def test_negative_bits_per_tuple_rejected(self):
        simulator = make_simulator()
        simulator.begin_round()
        with pytest.raises(ValueError, match="bits_per_tuple"):
            simulator.send(0, 1, "R", [(1,)], -8)


class TestColumnPools:
    """The pooled columnar delivery path and its fleet-wide index."""

    def _numpy(self):
        pytest.importorskip("numpy")
        from repro.backend import numpy_or_none

        numpy = numpy_or_none()
        if numpy is None:
            pytest.skip("numpy disabled")
        return numpy

    def _columns(self, numpy, rows):
        return tuple(
            numpy.asarray(column, dtype=numpy.int64)
            for column in zip(*rows)
        )

    def _deliver(self, numpy, receivers, rows, p=4, **kwargs):
        simulator = make_simulator(p=p, enforce=False)
        simulator.begin_round()
        simulator.send_columns(
            0,
            numpy.asarray(receivers, dtype=numpy.int64),
            "R",
            self._columns(numpy, rows),
            bits_per_tuple=8,
            **kwargs,
        )
        simulator.end_round()
        return simulator

    def test_pool_offsets_and_slices(self):
        numpy = self._numpy()
        simulator = self._deliver(
            numpy, [2, 0, 2, 0], [(1, 1), (2, 2), (3, 3), (4, 4)]
        )
        pool = simulator.relation_pool("R")
        assert pool is not None
        assert pool.offsets.tolist() == [0, 2, 2, 4, 4]
        # Stable grouping: staged order preserved within a worker.
        assert pool.worker_slice(0)[0].tolist() == [2, 4]
        assert pool.worker_slice(2)[0].tolist() == [1, 3]
        assert pool.worker_slice(1)[0].tolist() == []
        assert pool.worker_count(3) == 0

    def test_mailbox_batches_are_pool_views(self):
        """Worker fragments share the pool's buffer (zero-copy)."""
        numpy = self._numpy()
        simulator = self._deliver(
            numpy, [1, 1, 2], [(1, 2), (3, 4), (5, 6)]
        )
        pool = simulator.relation_pool("R")
        [batch] = simulator.worker_column_batches(1, "R")
        for fragment_column, pool_column in zip(batch, pool.columns):
            assert (
                numpy.shares_memory(fragment_column, pool_column)
                or len(fragment_column) == 0
            )

    def test_source_sorted_flag_propagates(self):
        numpy = self._numpy()
        rows = [(1, 2), (3, 4), (5, 6)]
        sorted_sim = self._deliver(
            numpy, [1, 0, 1], rows, source_sorted=True
        )
        assert sorted_sim.relation_pool("R").source_sorted
        unsorted_sim = self._deliver(numpy, [1, 0, 1], rows)
        assert not unsorted_sim.relation_pool("R").source_sorted

    def test_multi_stage_pool_merges_stages(self):
        numpy = self._numpy()
        simulator = make_simulator(p=3, enforce=False)
        simulator.begin_round()
        simulator.send_columns(
            0,
            numpy.asarray([1, 2], dtype=numpy.int64),
            "R",
            self._columns(numpy, [(1,), (2,)]),
            bits_per_tuple=8,
            source_sorted=True,
        )
        simulator.send_columns(
            1,
            numpy.asarray([1], dtype=numpy.int64),
            "R",
            self._columns(numpy, [(3,)]),
            bits_per_tuple=8,
            source_sorted=True,
        )
        simulator.end_round()
        pool = simulator.relation_pool("R")
        assert pool.worker_slice(1)[0].tolist() == [1, 3]
        assert pool.worker_slice(2)[0].tolist() == [2]
        # Interleaved stages cannot promise per-worker source order.
        assert not pool.source_sorted

    def test_pools_merge_across_rounds(self):
        numpy = self._numpy()
        simulator = make_simulator(p=2, enforce=False)
        for batch in ([(1,), (2,)], [(3,)]):
            simulator.begin_round()
            simulator.send_columns(
                0,
                numpy.full(len(batch), 1, dtype=numpy.int64),
                "R",
                self._columns(numpy, batch),
                bits_per_tuple=8,
            )
            simulator.end_round()
        pool = simulator.relation_pool("R")
        assert pool.worker_slice(1)[0].tolist() == [1, 2, 3]
        # Merged pools are cached until the next delivery.
        assert simulator.relation_pool("R") is pool

    def test_row_delivery_disables_pool(self):
        """Mixed row/column storage falls back to the mailbox view."""
        numpy = self._numpy()
        simulator = make_simulator(p=2, enforce=False)
        simulator.begin_round()
        simulator.send(0, 1, "R", [(9, 9)], 8)
        simulator.send_columns(
            0,
            numpy.asarray([1], dtype=numpy.int64),
            "R",
            self._columns(numpy, [(1, 2)]),
            bits_per_tuple=8,
        )
        simulator.end_round()
        assert simulator.relation_pool("R") is None
        assert simulator.relation_pool("unknown") is None
