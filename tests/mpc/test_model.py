"""Unit tests for MPCConfig capacity arithmetic."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.mpc.model import MPCConfig, degenerate_rounds


class TestValidation:
    def test_p_positive(self):
        with pytest.raises(ValueError):
            MPCConfig(p=0)

    def test_eps_range(self):
        with pytest.raises(ValueError):
            MPCConfig(p=4, eps=Fraction(3, 2))
        with pytest.raises(ValueError):
            MPCConfig(p=4, eps=Fraction(-1, 2))

    def test_c_positive(self):
        with pytest.raises(ValueError):
            MPCConfig(p=4, c=0)

    def test_eps_coerced_to_fraction(self):
        config = MPCConfig(p=4, eps=Fraction(1, 2))
        assert config.eps == Fraction(1, 2)


class TestCapacity:
    def test_basic_model_divides_by_p(self):
        config = MPCConfig(p=16, eps=Fraction(0), c=1.0)
        assert config.capacity_bits(1600) == pytest.approx(100.0)

    def test_eps_half_divides_by_sqrt_p(self):
        config = MPCConfig(p=16, eps=Fraction(1, 2), c=1.0)
        assert config.capacity_bits(1600) == pytest.approx(400.0)

    def test_eps_one_is_degenerate(self):
        config = MPCConfig(p=16, eps=Fraction(1), c=1.0)
        assert config.capacity_bits(1600) == pytest.approx(1600.0)

    def test_constant_scales(self):
        small = MPCConfig(p=4, eps=Fraction(0), c=1.0)
        big = MPCConfig(p=4, eps=Fraction(0), c=3.0)
        assert big.capacity_bits(100) == pytest.approx(
            3 * small.capacity_bits(100)
        )

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            MPCConfig(p=4).capacity_bits(-1)

    def test_replication_budget(self):
        assert MPCConfig(p=16, eps=Fraction(0)).replication_budget() == 1.0
        assert MPCConfig(
            p=16, eps=Fraction(1, 2)
        ).replication_budget() == pytest.approx(4.0)

    def test_describe_mentions_parameters(self):
        text = MPCConfig(p=8, eps=Fraction(1, 3)).describe()
        assert "p=8" in text
        assert "1/3" in text


class TestDegenerateRounds:
    def test_basic_model(self):
        assert degenerate_rounds(MPCConfig(p=16, eps=Fraction(0))) == 16

    def test_half_model(self):
        assert degenerate_rounds(MPCConfig(p=16, eps=Fraction(1, 2))) == 4
