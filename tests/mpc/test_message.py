"""Unit tests for messages, mailboxes and round statistics."""

from __future__ import annotations

import pytest

from repro.mpc.message import Mailbox, Message, input_server
from repro.mpc.stats import RoundStats, SimulationReport


class TestMessage:
    def test_size_accounting(self):
        message = Message(0, 1, "R", ((1, 2), (3, 4)), bits_per_tuple=14)
        assert message.num_tuples == 2
        assert message.size_bits == 28

    def test_rows_normalised_to_tuples(self):
        message = Message(0, 1, "R", [[1, 2]], bits_per_tuple=4)
        assert message.rows == ((1, 2),)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, "R", ((1,),), bits_per_tuple=-1)

    def test_input_server_label(self):
        assert input_server("S1") == "input:S1"


class TestMailbox:
    def test_deliver_accumulates_by_relation(self):
        mailbox = Mailbox()
        mailbox.deliver(Message(0, 1, "R", ((1,),), 4))
        mailbox.deliver(Message(0, 1, "R", ((2,),), 4))
        mailbox.deliver(Message(0, 1, "S", ((3,),), 4))
        assert mailbox.rows("R") == [(1,), (2,)]
        assert mailbox.rows("S") == [(3,)]
        assert set(mailbox.relations()) == {"R", "S"}

    def test_missing_relation_is_empty(self):
        assert Mailbox().rows("nope") == []

    def test_clear(self):
        mailbox = Mailbox()
        mailbox.deliver(Message(0, 1, "R", ((1,),), 4))
        mailbox.clear()
        assert mailbox.rows("R") == []


class TestRoundStats:
    def make(self):
        return RoundStats(
            round_index=1,
            received_bits=(10, 30, 0, 20),
            received_tuples=(1, 3, 0, 2),
            capacity_bits=100.0,
        )

    def test_aggregates(self):
        stats = self.make()
        assert stats.max_received_bits == 30
        assert stats.max_received_tuples == 3
        assert stats.total_bits == 60
        assert stats.total_tuples == 6

    def test_imbalance(self):
        stats = self.make()
        assert stats.load_imbalance == pytest.approx(30 / 15)

    def test_imbalance_of_silence_is_one(self):
        stats = RoundStats(1, (0, 0), (0, 0), 10.0)
        assert stats.load_imbalance == 1.0


class TestSimulationReport:
    def test_aggregates_over_rounds(self):
        report = SimulationReport(input_bits=100)
        report.rounds.append(RoundStats(1, (50, 10), (5, 1), 60.0))
        report.rounds.append(RoundStats(2, (20, 40), (2, 4), 60.0))
        assert report.num_rounds == 2
        assert report.max_load_bits == 50
        assert report.max_load_tuples == 5
        assert report.total_bits == 120
        assert report.replication_rate == pytest.approx(1.2)

    def test_empty_report(self):
        report = SimulationReport(input_bits=0)
        assert report.max_load_bits == 0
        assert report.replication_rate == 0.0
