"""Unit tests for Atom / ConjunctiveQuery / parsing."""

from __future__ import annotations

import pytest

from repro.core.query import Atom, ConjunctiveQuery, QueryError, parse_query


class TestAtom:
    def test_basic_properties(self):
        atom = Atom("S", ("x", "y", "x"))
        assert atom.arity == 3
        assert atom.variable_set == {"x", "y"}
        assert str(atom) == "S(x, y, x)"

    def test_rename(self):
        atom = Atom("S", ("x", "y"))
        renamed = atom.rename({"x": "u"})
        assert renamed.variables == ("u", "y")
        assert renamed.name == "S"

    def test_empty_name_rejected(self):
        with pytest.raises(QueryError):
            Atom("", ("x",))

    def test_no_variables_rejected(self):
        with pytest.raises(QueryError):
            Atom("S", ())


class TestConjunctiveQuery:
    def test_counts(self, triangle):
        assert triangle.num_variables == 3
        assert triangle.num_atoms == 3
        assert triangle.total_arity == 6

    def test_head_defaults_to_first_appearance_order(self):
        query = ConjunctiveQuery(
            [Atom("S1", ("b", "a")), Atom("S2", ("a", "c"))]
        )
        assert query.head == ("b", "a", "c")

    def test_explicit_head_order_respected(self):
        query = ConjunctiveQuery(
            [Atom("S1", ("x", "y"))], head=("y", "x")
        )
        assert query.head == ("y", "x")

    def test_self_join_rejected(self):
        with pytest.raises(QueryError, match="self-join"):
            ConjunctiveQuery(
                [Atom("S", ("x", "y")), Atom("S", ("y", "z"))]
            )

    def test_non_full_head_rejected(self):
        with pytest.raises(QueryError, match="full"):
            ConjunctiveQuery([Atom("S", ("x", "y"))], head=("x",))

    def test_head_with_extra_variable_rejected(self):
        with pytest.raises(QueryError, match="full"):
            ConjunctiveQuery([Atom("S", ("x",))], head=("x", "y"))

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError, match="at least one atom"):
            ConjunctiveQuery([])

    def test_atom_lookup(self, triangle):
        assert triangle.atom("S1").variables == ("x1", "x2")
        with pytest.raises(KeyError):
            triangle.atom("missing")

    def test_atoms_of_variable(self, triangle):
        names = {atom.name for atom in triangle.atoms_of("x1")}
        assert names == {"S1", "S3"}

    def test_connectivity(self, triangle):
        assert triangle.is_connected
        disconnected = ConjunctiveQuery(
            [Atom("R", ("x",)), Atom("S", ("y",))]
        )
        assert not disconnected.is_connected
        assert len(disconnected.connected_components) == 2

    def test_connected_components_are_full_queries(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        components = query.connected_components
        assert {c.num_atoms for c in components} == {1}
        assert {v for c in components for v in c.head} == {"x", "y", "u", "v"}

    def test_subquery(self, chain4):
        sub = chain4.subquery(["S2", "S3"])
        assert sub.num_atoms == 2
        assert set(sub.head) == {"x1", "x2", "x3"}

    def test_subquery_unknown_atom_rejected(self, chain4):
        with pytest.raises(QueryError, match="unknown atoms"):
            chain4.subquery(["S9"])

    def test_rename_variables(self, two_hop):
        renamed = two_hop.rename_variables({"x": "a", "z": "c"})
        assert renamed.head == ("a", "y", "c")
        assert renamed.atom("S1").variables == ("a", "y")

    def test_rename_must_be_injective(self, two_hop):
        with pytest.raises(QueryError, match="injective"):
            two_hop.rename_variables({"x": "y"})

    def test_equality_and_hash(self, two_hop):
        clone = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        assert clone == two_hop
        assert hash(clone) == hash(two_hop)
        assert clone != parse_query("q(x,y,z) = S1(x,y), S2(x,z)")

    def test_str_round_trips_through_parser(self, triangle):
        assert parse_query(str(triangle)) == triangle


class TestParsing:
    def test_bare_body(self):
        query = parse_query("S1(x,y), S2(y,z)")
        assert query.num_atoms == 2
        assert query.head == ("x", "y", "z")

    def test_head_and_body(self):
        query = parse_query("q(z,y,x) = S1(x,y), S2(y,z)")
        assert query.head == ("z", "y", "x")
        assert query.name == "q"

    def test_whitespace_tolerated(self):
        query = parse_query("  S1( x , y ) ,S2(y,z)  ")
        assert query.num_atoms == 2

    def test_primed_variables(self):
        query = parse_query("S1(x,x'), S2(x',y)")
        assert "x'" in query.head

    def test_malformed_head_rejected(self):
        with pytest.raises(QueryError, match="malformed head"):
            parse_query("q(x = S(x)")

    def test_malformed_body_rejected(self):
        with pytest.raises(QueryError, match="malformed body"):
            parse_query("S1(x,y), garbage")

    def test_missing_comma_rejected(self):
        with pytest.raises(QueryError, match="expected ','"):
            parse_query("S1(x,y) S2(y,z)")

    def test_empty_argument_rejected(self):
        with pytest.raises(QueryError, match="empty argument"):
            parse_query("S1(x,)")

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")
