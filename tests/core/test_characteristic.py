"""Unit tests for chi(q), Lemma 2.1 and contraction (Section 2.3)."""

from __future__ import annotations

import pytest

from repro.core.characteristic import characteristic, contract, is_tree_like
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.query import Atom, ConjunctiveQuery, QueryError, parse_query


class TestCharacteristicValues:
    @pytest.mark.parametrize("k", [3, 4, 5, 8])
    def test_cycles_have_chi_minus_one(self, k):
        assert characteristic(cycle_query(k)) == -1

    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_lines_are_tree_like(self, k):
        query = line_query(k)
        assert characteristic(query) == 0
        assert is_tree_like(query)

    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_stars_are_tree_like(self, k):
        assert is_tree_like(star_query(k))

    def test_spiders_are_tree_like(self):
        assert is_tree_like(spider_query(3))

    def test_binomial_chi(self):
        # B_{k,m}: chi = k + C(k,m) - m C(k,m) - 1.
        from math import comb

        for k, m in [(3, 2), (4, 2), (4, 3)]:
            expected = k + comb(k, m) - m * comb(k, m) - 1
            assert characteristic(binomial_query(k, m)) == expected

    def test_acyclic_but_not_tree_like(self):
        # The paper's example: S1(x0,x1,x2), S2(x1,x2,x3).
        query = parse_query("S1(x0,x1,x2), S2(x1,x2,x3)")
        assert characteristic(query) == 4 + 2 - 6 - 1
        assert not is_tree_like(query)


class TestLemma21:
    def test_a_additive_over_components(self):
        """chi(q) = sum of chi over connected components."""
        query = ConjunctiveQuery(
            [
                Atom("R1", ("a", "b")),
                Atom("R2", ("b", "c")),
                Atom("Q1", ("u", "v")),
            ]
        )
        total = characteristic(query)
        parts = sum(
            characteristic(component)
            for component in query.connected_components
        )
        assert total == parts

    @pytest.mark.parametrize(
        "query,m",
        [
            (line_query(5), ["S2", "S4"]),
            (line_query(6), ["S1"]),
            (cycle_query(6), ["S2", "S5"]),
            (spider_query(3), ["R1", "S1"]),
        ],
        ids=["L5", "L6", "C6", "SP3"],
    )
    def test_b_contraction_subtracts(self, query, m):
        """chi(q/M) = chi(q) - chi(M)."""
        m_query = query.subquery(m)
        assert characteristic(contract(query, m)) == characteristic(
            query
        ) - characteristic(m_query)

    @pytest.mark.parametrize(
        "query",
        [
            line_query(4),
            cycle_query(5),
            star_query(3),
            binomial_query(4, 2),
            spider_query(2),
            parse_query("S1(x,y,z), S2(z,w)"),
        ],
        ids=["L4", "C5", "T3", "B42", "SP2", "ternary"],
    )
    def test_c_chi_nonpositive(self, query):
        assert characteristic(query) <= 0

    def test_d_contraction_never_decreases_chi(self):
        query = cycle_query(6)
        for m in (["S1"], ["S1", "S2"], ["S1", "S3", "S5"]):
            assert characteristic(contract(query, m)) >= characteristic(query)


class TestContraction:
    def test_paper_example_l5(self):
        """L5/{S2,S4} = S1(x0,x1), S3(x1,x3), S5(x3,x5)."""
        contracted = contract(line_query(5), ["S2", "S4"])
        assert [str(atom) for atom in contracted.atoms] == [
            "S1(x0, x1)",
            "S3(x1, x3)",
            "S5(x3, x5)",
        ]

    def test_contract_nothing_is_identity(self, chain4):
        assert contract(chain4, []) is chain4

    def test_contract_all_atoms_rejected(self, chain4):
        with pytest.raises(QueryError, match="every atom"):
            contract(chain4, ["S1", "S2", "S3", "S4"])

    def test_contract_unknown_atoms_rejected(self, chain4):
        with pytest.raises(QueryError, match="unknown atoms"):
            contract(chain4, ["S9"])

    def test_contract_cycle_shrinks_cycle(self):
        contracted = contract(cycle_query(6), ["S2", "S4", "S6"])
        # C6 with every other atom contracted is isomorphic to C3.
        assert contracted.num_atoms == 3
        assert contracted.num_variables == 3
        assert characteristic(contracted) == -1

    def test_contract_component_merges_to_representative(self):
        query = parse_query("S1(a,b), S2(b,c), S3(c,d)")
        contracted = contract(query, ["S2"])
        # b and c merge into b (earliest in head order).
        assert set(contracted.head) == {"a", "b", "d"}
        assert contracted.atom("S3").variables == ("b", "d")

    def test_contract_disconnected_component_drops_variables(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        contracted = contract(query, ["S"])
        assert set(contracted.head) == {"x", "y"}

    def test_contract_can_create_repeated_variables(self):
        # Contracting the middle of a triangle identifies endpoints.
        query = cycle_query(3)
        contracted = contract(query, ["S1"])
        # S2(x2,x3), S3(x3,x1) with x1 = x2 -> repeated variable pattern.
        assert contracted.num_atoms == 2
        assert contracted.num_variables == 2
