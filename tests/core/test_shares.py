"""Unit tests for share exponents and integer share allocation."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.core.covers import fractional_vertex_cover
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import QueryError
from repro.core.shares import (
    allocate_integer_shares,
    replication_factor,
    share_exponents,
)


class TestShareExponents:
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_odd_cycle_shares_are_uniform(self, k):
        """Odd cycles have a unique optimal cover (all 1/2), so their
        share exponents are forced to 1/k each.  (Even cycles admit
        integral optima like (1,0,1,0), so no uniqueness there.)"""
        exponents = share_exponents(cycle_query(k))
        assert all(value == Fraction(1, k) for value in exponents.values())

    def test_even_cycle_shares_from_paper_cover(self):
        """With the paper's canonical (1/2,...,1/2) cover supplied
        explicitly, even cycles also get uniform shares."""
        from repro.core.families import cycle_facts

        facts = cycle_facts(4)
        exponents = share_exponents(facts.query, facts.vertex_cover)
        assert all(value == Fraction(1, 4) for value in exponents.values())

    def test_star_shares_concentrate_on_hub(self):
        exponents = share_exponents(star_query(3))
        assert exponents["z"] == 1
        assert all(
            exponents[f"x{i}"] == 0 for i in range(1, 4)
        )

    @pytest.mark.parametrize(
        "query",
        [cycle_query(3), line_query(5), star_query(4)],
        ids=lambda q: q.name,
    )
    def test_exponents_sum_to_one(self, query):
        assert sum(share_exponents(query).values()) == 1

    def test_custom_cover_respected(self):
        query = line_query(2)
        cover = {"x0": Fraction(1), "x1": Fraction(1), "x2": Fraction(1)}
        exponents = share_exponents(query, cover)
        assert all(value == Fraction(1, 3) for value in exponents.values())

    def test_zero_cover_rejected(self):
        query = line_query(2)
        with pytest.raises(QueryError, match="non-positive"):
            share_exponents(
                query, {v: Fraction(0) for v in query.variables}
            )


class TestIntegerAllocation:
    def test_perfect_cube(self):
        exponents = share_exponents(cycle_query(3))
        allocation = allocate_integer_shares(exponents, 27)
        assert allocation.shares == {"x1": 3, "x2": 3, "x3": 3}
        assert allocation.used_servers == 27

    def test_product_never_exceeds_p(self):
        for p in (1, 2, 3, 5, 7, 10, 16, 31, 64, 100, 1000):
            for query in (cycle_query(3), line_query(4), star_query(3)):
                exponents = share_exponents(query)
                allocation = allocate_integer_shares(exponents, p)
                product = math.prod(allocation.shares.values())
                assert product == allocation.used_servers <= p
                assert all(s >= 1 for s in allocation.shares.values())

    def test_p_one_gives_all_ones(self):
        exponents = share_exponents(cycle_query(4))
        allocation = allocate_integer_shares(exponents, 1)
        assert set(allocation.shares.values()) == {1}

    def test_zero_exponent_gets_share_one(self):
        exponents = share_exponents(line_query(4))
        allocation = allocate_integer_shares(exponents, 64)
        for variable, exponent in exponents.items():
            if exponent == 0:
                assert allocation.shares[variable] == 1

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError, match="at least one server"):
            allocate_integer_shares({"x": Fraction(1)}, 0)

    def test_exponents_over_one_rejected(self):
        with pytest.raises(ValueError, match="sum to"):
            allocate_integer_shares(
                {"x": Fraction(1), "y": Fraction(1)}, 8
            )

    def test_greedy_beats_floor_only(self):
        """Ablation: greedy ascent uses more of the budget than floors."""
        exponents = share_exponents(cycle_query(3))
        p = 30  # not a perfect cube: floor gives 3*3*3 = 27
        allocation = allocate_integer_shares(exponents, p)
        floor_product = math.prod(
            max(1, math.floor(p ** float(e))) for e in exponents.values()
        )
        assert allocation.used_servers >= floor_product

    def test_dimensions_ordering(self):
        exponents = share_exponents(cycle_query(3))
        allocation = allocate_integer_shares(exponents, 8)
        assert allocation.dimensions() == tuple(allocation.shares.values())


class TestReplication:
    def test_replication_bound_proposition_32(self):
        """Each atom's replication <= p^{1 - 1/tau} (Prop 3.2)."""
        for query in (cycle_query(3), line_query(3), star_query(3)):
            cover = fractional_vertex_cover(query)
            tau = sum(cover.values())
            for p in (8, 27, 64):
                exponents = share_exponents(query, cover)
                allocation = allocate_integer_shares(exponents, p)
                bound = float(p) ** float(1 - 1 / tau)
                for atom_name, factor in replication_factor(
                    query, allocation.shares
                ).items():
                    # Integer rounding can add slack of at most the
                    # largest single share step; allow a 2x margin.
                    assert factor <= 2 * bound, (query.name, atom_name)

    def test_star_has_no_replication(self):
        query = star_query(4)
        exponents = share_exponents(query)
        allocation = allocate_integer_shares(exponents, 16)
        factors = replication_factor(query, allocation.shares)
        assert all(factor == 1 for factor in factors.values())
