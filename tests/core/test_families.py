"""Closed forms of Table 1/2 vs the generic machinery, per family."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.characteristic import characteristic
from repro.core.covers import (
    covering_number,
    is_fractional_vertex_cover,
    space_exponent,
)
from repro.core.families import (
    FAMILY_REGISTRY,
    binomial_facts,
    binomial_query,
    cycle_facts,
    cycle_query,
    line_facts,
    line_query,
    spider_facts,
    spider_query,
    star_facts,
    star_query,
)


class TestConstructors:
    def test_cycle_shape(self):
        query = cycle_query(4)
        assert query.num_atoms == 4
        assert query.atom("S4").variables == ("x4", "x1")

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_query(2)

    def test_line_shape(self):
        query = line_query(3)
        assert query.head == ("x0", "x1", "x2", "x3")

    def test_line_minimum_size(self):
        with pytest.raises(ValueError):
            line_query(0)

    def test_star_shape(self):
        query = star_query(2)
        assert all("z" in atom.variable_set for atom in query.atoms)

    def test_binomial_shape(self):
        from math import comb

        query = binomial_query(4, 2)
        assert query.num_atoms == comb(4, 2)
        assert query.num_variables == 4

    def test_binomial_bad_m(self):
        with pytest.raises(ValueError):
            binomial_query(3, 4)

    def test_spider_shape(self):
        query = spider_query(2)
        assert query.num_atoms == 4
        assert query.num_variables == 5


FACT_CASES = [
    cycle_facts(3),
    cycle_facts(4),
    cycle_facts(6),
    line_facts(2),
    line_facts(3),
    line_facts(5),
    line_facts(8),
    star_facts(1),
    star_facts(4),
    binomial_facts(3, 2),
    binomial_facts(4, 2),
    binomial_facts(4, 3),
    spider_facts(2),
    spider_facts(3),
]


class TestClosedFormsAgainstLP:
    """The paper's Table 1 closed forms, checked against the exact LP."""

    @pytest.mark.parametrize(
        "facts", FACT_CASES, ids=lambda f: f.query.name
    )
    def test_tau_star(self, facts):
        assert covering_number(facts.query) == facts.tau_star

    @pytest.mark.parametrize(
        "facts", FACT_CASES, ids=lambda f: f.query.name
    )
    def test_space_exponent(self, facts):
        assert space_exponent(facts.query) == facts.space_exp

    @pytest.mark.parametrize(
        "facts", FACT_CASES, ids=lambda f: f.query.name
    )
    def test_paper_cover_is_feasible_and_optimal(self, facts):
        assert is_fractional_vertex_cover(facts.query, facts.vertex_cover)
        assert sum(facts.vertex_cover.values()) == facts.tau_star

    @pytest.mark.parametrize(
        "facts", FACT_CASES, ids=lambda f: f.query.name
    )
    def test_share_exponents_sum_to_one(self, facts):
        assert sum(facts.share_exps.values()) == 1

    @pytest.mark.parametrize(
        "facts", FACT_CASES, ids=lambda f: f.query.name
    )
    def test_answer_size_exponent_is_one_plus_chi(self, facts):
        assert facts.answer_size_exponent == 1 + characteristic(facts.query)


class TestRegistry:
    def test_registry_families(self):
        assert set(FAMILY_REGISTRY) == {"C", "T", "L", "SP"}

    def test_registry_constructs(self):
        facts = FAMILY_REGISTRY["L"](4)
        assert facts.query.name == "L4"
        assert facts.tau_star == 2
