"""Unit tests for Gamma^1_eps membership and the plan builder."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.bounds import round_lower_bound, round_upper_bound
from repro.core.covers import covering_number
from repro.core.families import (
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.plans import (
    PlanRound,
    PlanStep,
    QueryPlan,
    build_plan,
    gamma_one_threshold,
    in_gamma_one,
    validate_plan,
)
from repro.core.query import Atom, ConjunctiveQuery, QueryError, parse_query


class TestGammaOne:
    def test_threshold_values(self):
        assert gamma_one_threshold(Fraction(0)) == 1
        assert gamma_one_threshold(Fraction(1, 2)) == 2
        assert gamma_one_threshold(Fraction(2, 3)) == 3

    def test_threshold_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            gamma_one_threshold(Fraction(3, 2))
        with pytest.raises(ValueError):
            gamma_one_threshold(Fraction(-1, 2))

    def test_membership_at_zero(self):
        assert in_gamma_one(star_query(5), Fraction(0))
        assert in_gamma_one(line_query(2), Fraction(0))
        assert not in_gamma_one(line_query(3), Fraction(0))
        assert not in_gamma_one(cycle_query(3), Fraction(0))

    def test_membership_at_half(self):
        assert in_gamma_one(line_query(4), Fraction(1, 2))
        assert not in_gamma_one(line_query(5), Fraction(1, 2))
        assert in_gamma_one(cycle_query(4), Fraction(1, 2))
        assert not in_gamma_one(cycle_query(5), Fraction(1, 2))

    def test_disconnected_not_member(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        assert not in_gamma_one(query, Fraction(1, 2))


class TestBuildPlanDepths:
    """Plan depths vs Table 2 and Example 4.2."""

    @pytest.mark.parametrize(
        "k,eps,depth",
        [
            (2, Fraction(0), 1),
            (4, Fraction(0), 2),
            (8, Fraction(0), 3),
            (16, Fraction(0), 4),
            (16, Fraction(1, 2), 2),   # Example 4.2: two rounds of L4
            (16, Fraction(2, 3), 2),
            (5, Fraction(0), 3),
        ],
    )
    def test_line_depths(self, k, eps, depth):
        assert build_plan(line_query(k), eps).depth == depth

    @pytest.mark.parametrize(
        "k,eps,depth",
        [
            (3, Fraction(1, 3), 1),   # at its own space exponent
            (5, Fraction(0), 3),
            (6, Fraction(0), 3),
            (8, Fraction(0), 3),
        ],
    )
    def test_cycle_depths(self, k, eps, depth):
        assert build_plan(cycle_query(k), eps).depth == depth

    def test_star_single_round(self):
        assert build_plan(star_query(6), Fraction(0)).depth == 1

    def test_spider_two_rounds(self):
        """Example 4.2: SP_k needs only 2 rounds at eps = 0."""
        for k in (2, 3, 4):
            assert build_plan(spider_query(k), Fraction(0)).depth == 2

    @pytest.mark.parametrize("k", [3, 5, 9, 12])
    def test_depth_within_bounds(self, k):
        """Lower bound <= depth <= Lemma 4.3 upper bound."""
        query = line_query(k)
        for eps in (Fraction(0), Fraction(1, 2)):
            depth = build_plan(query, eps).depth
            assert depth <= round_upper_bound(query, eps)
            assert depth >= round_lower_bound(query, eps)


class TestPlanStructure:
    def test_single_round_when_in_gamma_one(self):
        plan = build_plan(line_query(2), Fraction(0))
        assert plan.depth == 1
        assert plan.rounds[0].steps[0].query == line_query(2)

    def test_every_operator_in_gamma_one(self):
        for eps in (Fraction(0), Fraction(1, 2)):
            plan = build_plan(line_query(9), eps)
            for operator in plan.operator_queries():
                assert in_gamma_one(operator, eps)

    def test_operators_cover_all_atoms(self):
        plan = build_plan(cycle_query(7), Fraction(0))
        used = {
            atom.name
            for operator in plan.operator_queries()
            for atom in operator.atoms
        }
        base = {atom.name for atom in cycle_query(7).atoms}
        assert base <= used

    def test_disconnected_rejected(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        with pytest.raises(QueryError, match="connected"):
            build_plan(query, Fraction(0))

    def test_plan_validates(self):
        plan = build_plan(line_query(10), Fraction(0))
        validate_plan(plan)  # should not raise


class TestValidatePlanErrors:
    def test_unavailable_relation_rejected(self):
        query = line_query(2)
        bad = QueryPlan(
            query=query,
            rounds=(
                PlanRound(
                    steps=(
                        PlanStep(
                            output="V",
                            query=parse_query("S9(x,y)"),
                        ),
                    )
                ),
            ),
            output="V",
            eps=Fraction(0),
        )
        with pytest.raises(QueryError, match="unavailable"):
            validate_plan(bad)

    def test_operator_outside_gamma_rejected(self):
        query = line_query(3)
        bad = QueryPlan(
            query=query,
            rounds=(
                PlanRound(
                    steps=(PlanStep(output="V", query=query),)
                ),
            ),
            output="V",
            eps=Fraction(0),  # tau*(L3) = 2 > 1
        )
        with pytest.raises(QueryError, match="Gamma"):
            validate_plan(bad)

    def test_duplicate_view_rejected(self):
        query = line_query(2)
        step = PlanStep(output="S1", query=query)
        bad = QueryPlan(
            query=query,
            rounds=(PlanRound(steps=(step,)),),
            output="S1",
            eps=Fraction(1, 2),
        )
        with pytest.raises(QueryError, match="duplicate"):
            validate_plan(bad)

    def test_missing_output_rejected(self):
        query = line_query(2)
        bad = QueryPlan(
            query=query,
            rounds=(
                PlanRound(
                    steps=(PlanStep(output="V", query=query),)
                ),
            ),
            output="W",
            eps=Fraction(1, 2),
        )
        with pytest.raises(QueryError, match="never produces"):
            validate_plan(bad)


class TestGreedyGroupingMatchesKeps:
    """The LP-driven greedy reproduces k_eps = 2*floor(1/(1-eps))."""

    @pytest.mark.parametrize(
        "eps,group",
        [(Fraction(0), 2), (Fraction(1, 2), 4), (Fraction(2, 3), 6)],
    )
    def test_first_round_group_size(self, eps, group):
        # For a long chain, round-1 operators should be L_{k_eps}.
        plan = build_plan(line_query(12), eps)
        first_round_sizes = {
            step.query.num_atoms for step in plan.rounds[0].steps
        }
        assert max(first_round_sizes) == group
        assert covering_number(
            line_query(group)
        ) <= gamma_one_threshold(eps)
