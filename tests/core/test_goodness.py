"""Unit tests for eps-good sets and (eps, r)-plans (Definition 4.4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.bounds import k_eps
from repro.core.characteristic import characteristic
from repro.core.families import cycle_query, line_query, star_query
from repro.core.goodness import (
    connected_atom_subsets,
    cycle_good_set,
    find_lower_bound_plan,
    is_eps_good,
    line_good_set,
)
from repro.core.plans import build_plan, in_gamma_one
from repro.core.query import QueryError


class TestConnectedSubsets:
    def test_line_subsets_are_intervals(self):
        subsets = connected_atom_subsets(line_query(4))
        # Connected subsets of a path = intervals: 4+3+2+1 = 10.
        assert len(subsets) == 10

    def test_cycle_subset_count(self):
        subsets = connected_atom_subsets(cycle_query(4))
        # Arcs of a 4-cycle: 4 singletons + 4 pairs + 4 triples + full.
        assert len(subsets) == 13

    def test_min_size_filter(self):
        subsets = connected_atom_subsets(line_query(3), min_size=2)
        assert all(len(s) >= 2 for s in subsets)
        assert len(subsets) == 3


class TestIsEpsGood:
    def test_paper_good_set_for_line(self):
        """Lemma 4.6: every k_eps-th atom of L_k is eps-good."""
        for eps in (Fraction(0), Fraction(1, 2)):
            for k in (6, 8):
                good = line_good_set(k, eps)
                assert is_eps_good(line_query(k), good, eps)

    def test_adjacent_atoms_not_good_at_zero(self):
        """S1, S2 are joined by an L2 in Gamma^1_0: not 0-good."""
        assert not is_eps_good(
            line_query(4), {"S1", "S2"}, Fraction(0)
        )

    def test_distance_two_good_at_zero_but_not_at_half(self):
        """S1, S3 in L4: L3 connecting them has tau* = 2;
        in Gamma^1 at eps = 1/2 (not good) but not at eps = 0 (good)."""
        query = line_query(4)
        assert is_eps_good(query, {"S1", "S3"}, Fraction(0))
        assert not is_eps_good(query, {"S1", "S3"}, Fraction(1, 2))

    def test_condition_two_requires_tree_like_complement(self):
        """For C6 and M = {S1, S4}, the complement is two paths
        (tree-like): good at eps=0.  For the star the complement is
        never an issue but condition 1 fails for any pair."""
        assert is_eps_good(cycle_query(6), {"S1", "S4"}, Fraction(0))
        assert not is_eps_good(star_query(3), {"S1", "S2"}, Fraction(0))

    def test_unknown_atoms_rejected(self):
        with pytest.raises(QueryError, match="unknown"):
            is_eps_good(line_query(3), {"S9"}, Fraction(0))

    def test_cycle_good_set_construction(self):
        for k in (6, 8, 10):
            good = cycle_good_set(k, Fraction(0))
            assert is_eps_good(cycle_query(k), good, Fraction(0))


class TestLowerBoundPlans:
    @pytest.mark.parametrize(
        "k,eps,expected_rounds",
        [
            (4, Fraction(0), 2),
            (8, Fraction(0), 3),
            (16, Fraction(0), 4),
            (16, Fraction(1, 2), 2),
        ],
    )
    def test_line_lower_bounds_match_lemma_46(self, k, eps, expected_rounds):
        """Lemma 4.6: L_k needs ceil(log_{k_eps} k) rounds."""
        plan = find_lower_bound_plan(line_query(k), eps)
        base = k_eps(eps)
        target = _ceil_log(base, k)
        assert plan.rounds_lower_bound == target == expected_rounds

    def test_lower_bound_never_exceeds_builder_depth(self):
        """Consistency: lower bound <= achievable depth."""
        for k in (4, 5, 8, 11, 16):
            for eps in (Fraction(0), Fraction(1, 2)):
                query = line_query(k)
                lower = find_lower_bound_plan(query, eps).rounds_lower_bound
                upper = build_plan(query, eps).depth
                assert lower <= upper, (k, eps, lower, upper)

    def test_cycle_lower_bound(self):
        plan = find_lower_bound_plan(cycle_query(8), Fraction(0))
        # C8 at eps=0: paper's Lemma 4.9 gives ceil(log2(8/3)) + 1 = 3.
        assert plan.rounds_lower_bound == 3

    def test_contractions_preserve_characteristic(self):
        """Each contraction step must keep chi (Definition 4.4 cond 2)."""
        query = line_query(16)
        plan = find_lower_bound_plan(query, Fraction(0))
        assert plan.r >= 1
        for contracted in plan.contractions:
            assert characteristic(contracted) == characteristic(query)

    def test_final_contraction_outside_gamma_one(self):
        plan = find_lower_bound_plan(line_query(16), Fraction(0))
        assert plan.contractions
        assert not in_gamma_one(plan.contractions[-1], Fraction(0))

    def test_gamma_one_query_gets_trivial_bound(self):
        plan = find_lower_bound_plan(star_query(4), Fraction(0))
        assert plan.r == 0
        assert plan.rounds_lower_bound == 1  # one round suffices

    def test_outside_gamma_one_empty_chain_gives_two(self):
        plan = find_lower_bound_plan(cycle_query(3), Fraction(0))
        assert plan.rounds_lower_bound >= 2

    def test_disconnected_rejected(self):
        from repro.core.query import Atom, ConjunctiveQuery

        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        with pytest.raises(QueryError, match="connected"):
            find_lower_bound_plan(query, Fraction(0))


def _ceil_log(base: int, value: int) -> int:
    result, power = 0, 1
    while power < value:
        power *= base
        result += 1
    return result
