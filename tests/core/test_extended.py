"""Unit tests for the extended query construction (Lemma 3.9)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.covers import covering_number
from repro.core.extended import (
    extend_query,
    is_tight_packing,
    knowledge_weight_bound,
    lemma_39_holds,
    unary_atom_name,
)
from repro.core.families import cycle_query, line_query, star_query
from repro.core.friedgut import is_fractional_edge_cover
from repro.core.query import QueryError


class TestConstruction:
    def test_shape(self, triangle):
        extended = extend_query(triangle)
        assert extended.query.num_atoms == 3 + 3
        assert unary_atom_name("x1") in {
            atom.name for atom in extended.query.atoms
        }
        assert extended.query.head == triangle.head

    def test_cycle_unary_weights_are_zero(self):
        """C5's optimal packing (1/2,..) saturates every variable, so
        u' = 0 everywhere."""
        extended = extend_query(cycle_query(5))
        assert all(value == 0 for value in extended.unary_weights.values())

    def test_star_leaves_get_slack(self):
        """T_3's packing puts weight 1 on one atom; leaf variables of
        the other atoms carry slack 1."""
        extended = extend_query(star_query(3))
        slack_total = sum(extended.unary_weights.values())
        # k+1 = 4 variables; sum a_j u_j = 2 * 1; Lemma 3.9(b): total 4.
        assert 2 + slack_total == 4

    def test_non_packing_rejected(self, triangle):
        overloaded = {"S1": Fraction(1), "S2": Fraction(1), "S3": Fraction(1)}
        with pytest.raises(QueryError, match="not an edge packing"):
            extend_query(triangle, overloaded)


class TestLemma39:
    @pytest.mark.parametrize(
        "query",
        [
            cycle_query(3),
            cycle_query(4),
            cycle_query(6),
            line_query(2),
            line_query(3),
            line_query(5),
            star_query(1),
            star_query(4),
        ],
        ids=lambda q: q.name,
    )
    def test_both_clauses_hold(self, query):
        extended = extend_query(query)
        assert lemma_39_holds(extended)

    def test_tight_packing_is_also_cover(self, triangle):
        """Lemma 3.9(a): tightness makes the vector feasible for both
        sides, so Friedgut's inequality (which needs a cover) can use
        the packing."""
        extended = extend_query(triangle)
        weights = extended.combined_weights()
        assert is_tight_packing(extended.query, weights)
        assert is_fractional_edge_cover(extended.query, weights)

    def test_total_weight_is_tau_star_plus_slack(self):
        query = line_query(4)
        extended = extend_query(query)
        base = sum(extended.base_weights.values())
        assert base == covering_number(query)

    def test_is_tight_packing_rejects_loose(self, triangle):
        loose = {"S1": Fraction(1, 4), "S2": Fraction(1, 4), "S3": Fraction(1, 4)}
        assert not is_tight_packing(triangle, loose)


class TestKnowledgeWeightBound:
    @given(
        n=st.integers(min_value=1, max_value=1000),
        arity=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_matching_probability(self, n, arity):
        """P(a in S_j) = n^{1-a_j} for uniform matchings (Lemma 3.4's
        first step); exact fraction."""
        assert knowledge_weight_bound(n, arity) == Fraction(
            1, n ** (arity - 1)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            knowledge_weight_bound(0, 2)
        with pytest.raises(ValueError):
            knowledge_weight_bound(5, 0)

    def test_empirical_tuple_probability(self):
        """Monte-Carlo check: frequency of (1, v) in random matchings
        approximates n^{1-2} = 1/n."""
        import random

        from repro.data.matching import random_matching

        n, trials, hits = 16, 400, 0
        target = (1, 5)
        for seed in range(trials):
            relation = random_matching("S", 2, n, random.Random(seed))
            if target in relation:
                hits += 1
        frequency = hits / trials
        assert abs(frequency - 1 / n) < 3 / n
