"""Unit tests for the Figure 1 LPs: tau*, covers, packings, tightness."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.covers import (
    analyze_covers,
    covering_number,
    edge_packing_program,
    fractional_edge_packing,
    fractional_vertex_cover,
    is_fractional_edge_packing,
    is_fractional_vertex_cover,
    space_exponent,
    vertex_cover_program,
)
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.query import parse_query


class TestCoveringNumbers:
    """Table 1's tau* column, recomputed by the LP."""

    @pytest.mark.parametrize(
        "k,expected", [(3, Fraction(3, 2)), (4, 2), (5, Fraction(5, 2)), (8, 4)]
    )
    def test_cycles(self, k, expected):
        assert covering_number(cycle_query(k)) == expected

    @pytest.mark.parametrize(
        "k,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (16, 8)]
    )
    def test_lines(self, k, expected):
        assert covering_number(line_query(k)) == expected

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_stars_are_one(self, k):
        assert covering_number(star_query(k)) == 1

    @pytest.mark.parametrize(
        "k,m,expected",
        [(3, 2, Fraction(3, 2)), (4, 2, 2), (4, 3, Fraction(4, 3))],
    )
    def test_binomials(self, k, m, expected):
        assert covering_number(binomial_query(k, m)) == expected

    @pytest.mark.parametrize("k,expected", [(1, 1), (2, 2), (4, 4)])
    def test_spiders(self, k, expected):
        assert covering_number(spider_query(k)) == expected

    def test_witness_chain(self):
        query = parse_query("S1(w,x), S2(x,y), S3(y,z)")
        assert covering_number(query) == 2


class TestSpaceExponents:
    """Table 1's space exponent column: eps = 1 - 1/tau*."""

    @pytest.mark.parametrize(
        "query,expected",
        [
            (cycle_query(3), Fraction(1, 3)),
            (cycle_query(4), Fraction(1, 2)),
            (line_query(2), 0),
            (line_query(3), Fraction(1, 2)),
            (line_query(5), Fraction(2, 3)),
            (star_query(7), 0),
            (binomial_query(4, 2), Fraction(1, 2)),
            (spider_query(3), Fraction(2, 3)),
        ],
        ids=lambda value: getattr(value, "name", str(value)),
    )
    def test_space_exponent(self, query, expected):
        assert space_exponent(query) == expected


class TestSolutionsAreValid:
    @pytest.mark.parametrize(
        "query",
        [cycle_query(5), line_query(6), star_query(3), spider_query(2)],
        ids=lambda q: q.name,
    )
    def test_cover_is_feasible_and_optimal_valued(self, query):
        cover = fractional_vertex_cover(query)
        assert is_fractional_vertex_cover(query, cover)
        assert sum(cover.values()) == covering_number(query)

    @pytest.mark.parametrize(
        "query",
        [cycle_query(5), line_query(6), star_query(3), spider_query(2)],
        ids=lambda q: q.name,
    )
    def test_packing_is_feasible_and_optimal_valued(self, query):
        packing = fractional_edge_packing(query)
        assert is_fractional_edge_packing(query, packing)
        assert sum(packing.values()) == covering_number(query)

    def test_feasibility_checkers_reject_bad_candidates(self, triangle):
        assert not is_fractional_vertex_cover(
            triangle, {"x1": Fraction(1, 2)}
        )
        assert not is_fractional_vertex_cover(
            triangle, {"x1": Fraction(-1), "x2": Fraction(2), "x3": Fraction(2)}
        )
        assert not is_fractional_edge_packing(
            triangle, {"S1": Fraction(1), "S2": Fraction(1)}
        )
        assert not is_fractional_edge_packing(
            triangle, {"S1": Fraction(-1)}
        )


class TestAnalyzeCovers:
    def test_triangle_analysis(self, triangle):
        analysis = analyze_covers(triangle)
        assert analysis.tau_star == Fraction(3, 2)
        assert analysis.space_exponent == Fraction(1, 3)
        # C3's optimal pair is tight on both sides (paper, Example 2.2
        # discussion: packing (1/2,1/2,1/2) saturates all variables).
        assert analysis.cover_is_tight
        assert analysis.packing_is_tight

    def test_l3_cover_not_tight(self):
        """Example 2.2: L3's optimal cover (0,1,1,0) is not tight,
        while its optimal packing (1,0,1) is tight."""
        analysis = analyze_covers(line_query(3))
        assert analysis.tau_star == 2
        # The packing saturates every variable constraint.
        assert analysis.cover_is_tight

    def test_duality_holds_for_every_family(self):
        for query in (
            cycle_query(6),
            line_query(7),
            star_query(4),
            binomial_query(4, 3),
            spider_query(3),
        ):
            analysis = analyze_covers(query)
            primal = vertex_cover_program(query).solve().objective
            dual = edge_packing_program(query).solve().objective
            assert analysis.tau_star == primal == dual


class TestCorollary310:
    """tau* = 1 iff some variable occurs in every atom."""

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("S1(z,a), S2(z,b), S3(z,c)", True),
            ("S1(x,y), S2(y,z)", True),
            ("S1(x,y), S2(y,z), S3(z,x)", False),
            ("S1(x,y), S2(y,z), S3(z,w)", False),
            ("S1(x,y), S2(x,y), S3(x,z)", True),
        ],
    )
    def test_shared_variable_iff_tau_one(self, text, expected):
        query = parse_query(text)
        has_shared = any(
            all(v in atom.variable_set for atom in query.atoms)
            for v in query.variables
        )
        assert has_shared == expected
        assert (covering_number(query) == 1) == expected
