"""Unit tests for hypergraph structure and metrics (vs networkx)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.families import cycle_query, line_query, star_query
from repro.core.hypergraph import Hypergraph, hypergraph_of


def to_networkx(hypergraph: Hypergraph) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(hypergraph.nodes)
    for edge in hypergraph.edges:
        members = sorted(edge)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
    return graph


class TestConstruction:
    def test_edge_names_default(self):
        h = hypergraph_of(["a", "b"], [["a", "b"]])
        assert h.edge_names == ("e0",)

    def test_edge_names_length_checked(self):
        with pytest.raises(ValueError, match="parallel"):
            Hypergraph(("a",), (frozenset({"a"}),), ("e0", "e1"))

    def test_edge_outside_nodes_rejected(self):
        with pytest.raises(ValueError, match="not within nodes"):
            hypergraph_of(["a"], [["a", "b"]])


class TestAdjacencyAndComponents:
    def test_adjacency_of_triangle(self, triangle):
        adjacency = triangle.hypergraph.adjacency
        assert adjacency["x1"] == {"x2", "x3"}

    def test_isolated_node_is_singleton_component(self):
        h = hypergraph_of(["a", "b", "c"], [["a", "b"]])
        components = h.connected_components
        assert frozenset({"c"}) in components
        assert len(components) == 2

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_connectivity_matches_networkx(self, k):
        h = cycle_query(k).hypergraph
        assert h.is_connected == nx.is_connected(to_networkx(h))


class TestMetrics:
    @pytest.mark.parametrize(
        "query,radius,diameter",
        [
            (line_query(4), 2, 4),
            (line_query(5), 3, 5),
            (cycle_query(5), 2, 2),
            (cycle_query(6), 3, 3),
            (star_query(4), 1, 2),
        ],
        ids=lambda value: getattr(value, "name", value),
    )
    def test_radius_and_diameter(self, query, radius, diameter):
        h = query.hypergraph
        assert h.radius == radius
        assert h.diameter == diameter

    @pytest.mark.parametrize("k", [3, 5, 8])
    def test_metrics_match_networkx(self, k):
        h = line_query(k).hypergraph
        graph = to_networkx(h)
        assert h.radius == nx.radius(graph)
        assert h.diameter == nx.diameter(graph)

    def test_center_has_minimum_eccentricity(self):
        h = line_query(6).hypergraph
        assert h.eccentricity(h.center) == h.radius

    def test_distance_symmetry(self):
        h = cycle_query(7).hypergraph
        assert h.distance("x1", "x4") == h.distance("x4", "x1")

    def test_distance_unreachable_raises(self):
        h = hypergraph_of(["a", "b"], [["a"], ["b"]])
        with pytest.raises(ValueError, match="unreachable"):
            h.distance("a", "b")

    def test_unknown_start_raises(self):
        h = hypergraph_of(["a"], [["a"]])
        with pytest.raises(KeyError):
            h.distances_from("zz")

    def test_eccentricity_requires_connected(self):
        h = hypergraph_of(["a", "b"], [["a"], ["b"]])
        with pytest.raises(ValueError, match="disconnected"):
            h.eccentricity("a")


class TestEdgeStructure:
    def test_edge_adjacency_of_chain(self, chain4):
        adjacency = chain4.hypergraph.edge_adjacency
        assert adjacency["S1"] == {"S2"}
        assert adjacency["S2"] == {"S1", "S3"}

    def test_edge_components_splits_gaps(self, chain4):
        components = chain4.hypergraph.edge_components(["S1", "S2", "S4"])
        assert set(components) == {("S1", "S2"), ("S4",)}

    def test_edge_components_unknown_edge(self, chain4):
        with pytest.raises(KeyError, match="unknown edges"):
            chain4.hypergraph.edge_components(["S9"])

    def test_shortest_edge_path_from_endpoint(self):
        h = line_query(4).hypergraph
        assert h.shortest_edge_path("x0", "S4") == ("S1", "S2", "S3", "S4")

    def test_shortest_edge_path_starts_at_node(self):
        h = cycle_query(5).hypergraph
        path = h.shortest_edge_path("x1", "S3")
        assert len(path) <= 3
        first_edge_vars = h.edges[list(h.edge_names).index(path[0])]
        assert "x1" in first_edge_vars

    def test_shortest_edge_path_unknown_edge(self):
        h = line_query(2).hypergraph
        with pytest.raises(KeyError):
            h.shortest_edge_path("x0", "S9")

    def test_shortest_edge_path_unreachable(self):
        h = Hypergraph(
            ("a", "b"), (frozenset({"a"}), frozenset({"b"})), ("E1", "E2")
        )
        with pytest.raises(ValueError, match="unreachable"):
            h.shortest_edge_path("a", "E2")
