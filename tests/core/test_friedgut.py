"""Unit + property tests for Friedgut's inequality (Section 2.6)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.covers import fractional_edge_packing
from repro.core.families import cycle_query, line_query, star_query
from repro.core.friedgut import (
    edge_cover_number,
    friedgut_bound,
    friedgut_holds,
    friedgut_lhs,
    is_fractional_edge_cover,
    optimal_edge_cover,
    output_size_bound,
    verify_agm_on_instance,
)
from repro.core.query import QueryError, parse_query


class TestEdgeCover:
    @pytest.mark.parametrize(
        "query,expected",
        [
            (cycle_query(3), Fraction(3, 2)),
            (cycle_query(5), Fraction(5, 2)),
            (line_query(3), 2),
            (star_query(3), 3),  # cover needs every leaf atom
        ],
        ids=lambda v: getattr(v, "name", str(v)),
    )
    def test_edge_cover_numbers(self, query, expected):
        assert edge_cover_number(query) == expected

    def test_optimal_cover_is_feasible(self):
        for query in (cycle_query(4), line_query(5), star_query(2)):
            cover = optimal_edge_cover(query)
            assert is_fractional_edge_cover(query, cover)

    def test_cover_and_packing_coincide_when_tight(self):
        """For odd cycles the optimal packing (1/2,...) is tight, so
        cover number == packing number (Section 2.3's remark)."""
        query = cycle_query(5)
        packing = fractional_edge_packing(query)
        assert sum(packing.values()) == edge_cover_number(query)

    def test_cover_exceeds_packing_for_stars(self):
        """T_3: packing number 1 (hub saturates) but cover number 3."""
        query = star_query(3)
        packing = fractional_edge_packing(query)
        assert sum(packing.values()) == 1
        assert edge_cover_number(query) == 3

    def test_negative_weights_rejected_by_checker(self):
        query = line_query(2)
        assert not is_fractional_edge_cover(
            query, {"S1": Fraction(-1), "S2": Fraction(2)}
        )


class TestInequalityExamples:
    def test_paper_c3_instance(self):
        """The paper's C3 example: indicator weights give
        |C3| <= sqrt(|S1| |S2| |S3|)."""
        query = cycle_query(3)
        relations = {
            "S1": ((1, 2), (2, 3), (3, 1)),
            "S2": ((2, 3), (3, 1), (1, 2)),
            "S3": ((3, 1), (1, 2), (2, 3)),
        }
        actual, bound = verify_agm_on_instance(query, relations)
        assert actual <= bound
        assert bound == 6  # ceil of sqrt(27) = ceil(5.196...)

    def test_l3_uses_max_convention(self):
        """L3's cover (1, 0, 1) exercises the u -> 0 max term."""
        query = line_query(3)
        cover = {"S1": Fraction(1), "S2": Fraction(0), "S3": Fraction(1)}
        assert is_fractional_edge_cover(query, cover)
        weights = {
            "S1": {(1, 1): 2.0, (1, 2): 1.0},
            "S2": {(1, 1): 3.0, (2, 1): 5.0},
            "S3": {(1, 1): 1.0},
        }
        # rhs = (2+1) * max(3,5) * 1 = 15.
        assert friedgut_bound(query, weights, cover, n=2) == pytest.approx(15.0)
        lhs = friedgut_lhs(query, weights, n=2)
        assert lhs <= 15.0 + 1e-9

    def test_non_cover_rejected(self):
        query = cycle_query(3)
        bad = {"S1": Fraction(1, 4), "S2": Fraction(1, 4), "S3": Fraction(1, 4)}
        with pytest.raises(QueryError, match="edge cover"):
            friedgut_bound(query, {}, bad, n=2)


@st.composite
def weighted_instances(draw):
    """Random weights on a small query with its optimal edge cover."""
    query = draw(
        st.sampled_from(
            [cycle_query(3), line_query(2), line_query(3), star_query(2)]
        )
    )
    n = draw(st.integers(min_value=2, max_value=3))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    weights = {}
    for atom in query.atoms:
        table = {}
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            key = tuple(
                rng.randint(1, n) for _ in range(atom.arity)
            )
            table[key] = rng.random() * draw(
                st.floats(min_value=0.1, max_value=4.0)
            )
        weights[atom.name] = table
    return query, weights, n


class TestInequalityProperty:
    @given(weighted_instances())
    @settings(max_examples=40, deadline=None)
    def test_friedgut_holds_on_random_weights(self, instance):
        query, weights, n = instance
        cover = optimal_edge_cover(query)
        assert friedgut_holds(query, weights, cover, n)

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_agm_bound_on_random_matchings(self, seed):
        """AGM: |q(I)| <= prod |S_j|^{u_j} on matching inputs."""
        from repro.data.matching import matching_database

        for query in (cycle_query(3), line_query(3)):
            database = matching_database(query, n=12, rng=seed)
            actual, bound = verify_agm_on_instance(
                query,
                {name: database[name].tuples for name in database.relations},
            )
            assert actual <= bound


class TestOutputSizeBound:
    def test_c3_sqrt_formula(self):
        query = cycle_query(3)
        bound = output_size_bound(
            query, {"S1": 100, "S2": 100, "S3": 100}
        )
        assert bound == pytest.approx(1000.0)

    def test_zero_cardinality_kills_bound(self):
        query = line_query(2)
        assert output_size_bound(query, {"S1": 0, "S2": 50}) == 0.0

    def test_custom_cover_must_be_feasible(self):
        query = cycle_query(3)
        with pytest.raises(QueryError):
            output_size_bound(
                query,
                {"S1": 10, "S2": 10, "S3": 10},
                cover={"S1": Fraction(1, 4)},
            )
