"""Unit tests for query isomorphism, incl. the paper's contraction claims."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.characteristic import contract
from repro.core.families import cycle_query, line_query, star_query
from repro.core.goodness import line_good_set
from repro.core.isomorphism import are_isomorphic, find_isomorphism
from repro.core.query import parse_query


class TestBasics:
    def test_identical_queries(self, triangle):
        assert are_isomorphic(triangle, triangle)

    def test_renamed_variables(self):
        a = parse_query("S1(x,y), S2(y,z)")
        b = parse_query("R(u,v), Q(v,w)")
        mapping = find_isomorphism(a, b)
        assert mapping == {"x": "u", "y": "v", "z": "w"}

    def test_reversed_chain_is_isomorphic(self):
        a = parse_query("S1(x,y), S2(y,z)")
        b = parse_query("S1(z,y), S2(y,x)")
        assert are_isomorphic(a, b)

    def test_different_atom_counts(self):
        assert not are_isomorphic(line_query(2), line_query(3))

    def test_different_variable_counts(self):
        assert not are_isomorphic(
            parse_query("S1(x,y), S2(y,x)"), parse_query("S1(x,y), S2(y,z)")
        )

    def test_different_arities(self):
        assert not are_isomorphic(
            parse_query("S(x,y,z)"), parse_query("S(x,y)")
        )

    def test_structure_not_names(self):
        """Relation names are ignored: structure is what matters."""
        assert are_isomorphic(
            parse_query("A(x,y), B(y,z)"), parse_query("B(x,y), A(y,z)")
        )

    def test_cycle_vs_line(self):
        assert not are_isomorphic(cycle_query(3), line_query(3))

    def test_star_vs_line_orientation_matters(self):
        # T2 = S1(z,x1), S2(z,x2) and L2 = S1(x0,x1), S2(x1,x2) draw
        # the same undirected path, but isomorphism is positional
        # (column order is part of a relation's identity): the shared
        # variable sits at position 0 of both T2 atoms but at
        # different positions in L2 -- not isomorphic.
        assert not are_isomorphic(star_query(2), line_query(2))
        assert not are_isomorphic(star_query(3), line_query(3))
        # Reversing one atom's columns aligns them.
        oriented = parse_query("S1(x1,x0), S2(x1,x2)")
        assert are_isomorphic(star_query(2), oriented)

    def test_repeated_variable_patterns(self):
        a = parse_query("S(x,x), T(x,y)")
        b = parse_query("P(u,u), Q(u,v)")
        c = parse_query("P(u,v), Q(u,v)")
        assert are_isomorphic(a, b)
        assert not are_isomorphic(a, c)

    def test_mapping_is_a_bijection(self):
        mapping = find_isomorphism(cycle_query(5), cycle_query(5))
        assert mapping is not None
        assert len(set(mapping.values())) == len(mapping)


class TestPaperContractionClaims:
    @pytest.mark.parametrize(
        "k,eps,expected",
        [(8, Fraction(0), 4), (16, Fraction(0), 8), (16, Fraction(1, 2), 4)],
    )
    def test_lemma_46_line_contraction(self, k, eps, expected):
        """L_k contracted through Lemma 4.6's good set is L_{k/k_eps}."""
        query = line_query(k)
        good = line_good_set(k, eps)
        complement = {
            atom.name for atom in query.atoms
        } - good
        contracted = contract(query, complement)
        assert are_isomorphic(contracted, line_query(expected))

    def test_lemma_49_cycle_contraction(self):
        """C_6 with alternating atoms contracted is C_3."""
        contracted = contract(cycle_query(6), ["S2", "S4", "S6"])
        assert are_isomorphic(contracted, cycle_query(3))

    def test_paper_l5_example(self):
        """L5/{S2,S4} is isomorphic to L3."""
        contracted = contract(line_query(5), ["S2", "S4"])
        assert are_isomorphic(contracted, line_query(3))

    def test_spider_arm_is_l2(self):
        from repro.core.families import spider_query

        arm = spider_query(3).subquery(["R1", "S1"])
        assert are_isomorphic(arm, line_query(2))


class TestQueryIsomorphismWitness:
    """The full witness (variables + atoms) the plan cache relies on."""

    def test_atom_mapping_pairs_structural_twins(self):
        from repro.core.isomorphism import find_query_isomorphism

        a = parse_query("S1(x,y), S2(y,z)")
        b = parse_query("R(u,v), Q(v,w)")
        witness = find_query_isomorphism(a, b)
        assert witness is not None
        assert witness.variables == {"x": "u", "y": "v", "z": "w"}
        assert witness.atoms == {"S1": "R", "S2": "Q"}

    def test_atom_mapping_respects_positions(self):
        from repro.core.isomorphism import find_query_isomorphism

        a = parse_query("S1(x,y), S2(y,z)")
        b = parse_query("S2(a,b), S1(b,c)")
        witness = find_query_isomorphism(a, b)
        assert witness is not None
        # Positional consistency: each left atom maps to the right
        # atom whose variables are the mapped ones, in order.
        for left_name, right_name in witness.atoms.items():
            left_atom = a.atom(left_name)
            right_atom = b.atom(right_name)
            assert tuple(
                witness.variables[v] for v in left_atom.variables
            ) == right_atom.variables

    def test_atom_mapping_is_a_bijection_on_cycles(self):
        from repro.core.isomorphism import find_query_isomorphism

        a = cycle_query(3)
        b = parse_query("T3(u,v), T1(v,w), T2(w,u)")
        witness = find_query_isomorphism(a, b)
        assert witness is not None
        assert sorted(witness.atoms.values()) == ["T1", "T2", "T3"]

    def test_none_for_non_isomorphic(self):
        from repro.core.isomorphism import find_query_isomorphism

        assert (
            find_query_isomorphism(line_query(3), star_query(3)) is None
        )

    def test_find_isomorphism_unchanged_by_witness_refactor(self):
        a = parse_query("S1(x,y), S2(y,z)")
        assert find_isomorphism(a, a) == {"x": "x", "y": "y", "z": "z"}
