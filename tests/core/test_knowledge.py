"""Unit tests for the Theorem 3.3 / Lemma 3.7 bound calculator."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.families import cycle_query, line_query, star_query
from repro.core.knowledge import (
    failure_probability_floor,
    g_constant,
    knowledge_bound,
    knowledge_fraction_budget,
    multiround_g_constant,
)
from repro.core.query import Atom, ConjunctiveQuery, QueryError


class TestBudget:
    def test_formula(self):
        # L2: a = 4, l = 2 -> budget = c * 2 / p^{1-eps}.
        query = line_query(2)
        assert knowledge_fraction_budget(
            query, p=4, eps=Fraction(0), c=1.0
        ) == pytest.approx(0.5)

    def test_scales_with_eps(self):
        query = cycle_query(3)
        low = knowledge_fraction_budget(query, p=16, eps=Fraction(0))
        high = knowledge_fraction_budget(query, p=16, eps=Fraction(1, 2))
        assert high == pytest.approx(4 * low)

    def test_unary_vocabulary_rejected(self):
        query = ConjunctiveQuery([Atom("R", ("x",))])
        with pytest.raises(QueryError, match="unary"):
            knowledge_fraction_budget(query, p=4, eps=Fraction(0))

    def test_invalid_p(self):
        with pytest.raises(QueryError):
            knowledge_fraction_budget(line_query(2), p=0, eps=Fraction(0))


class TestGConstant:
    def test_triangle(self):
        # C3: a - l = 3, tau* = 3/2 -> g = (c * 2)^{3/2}.
        assert g_constant(cycle_query(3), c=1.0) == pytest.approx(2 ** 1.5)

    def test_grows_with_c(self):
        query = line_query(3)
        assert g_constant(query, 2.0) > g_constant(query, 1.0)

    def test_multiround_inflation(self):
        """Theorem 4.11 charges c(r+1): r = 0 equals the base case."""
        query = line_query(4)
        assert multiround_g_constant(query, 1.0, 0) == g_constant(query, 1.0)
        assert multiround_g_constant(query, 1.0, 2) == g_constant(query, 3.0)

    def test_negative_rounds_rejected(self):
        with pytest.raises(QueryError):
            multiround_g_constant(line_query(2), 1.0, -1)


class TestKnowledgeBound:
    def test_decays_with_p(self):
        query = line_query(3)
        small = knowledge_bound(query, p=4, eps=Fraction(0))
        large = knowledge_bound(query, p=64, eps=Fraction(0))
        assert large.all_servers_fraction < small.all_servers_fraction
        assert large.per_server_fraction < small.per_server_fraction

    def test_exponent_is_tau_times_one_minus_eps(self):
        """Doubling log p scales the per-server bound by the exponent
        (1-eps) tau*."""
        query = cycle_query(3)  # tau* = 3/2
        eps = Fraction(0)
        at_4 = knowledge_bound(query, 4, eps).per_server_fraction
        at_16 = knowledge_bound(query, 16, eps).per_server_fraction
        # p^2 ratio at exponent 3/2 -> factor 4^{3/2} = 8.
        assert at_4 / at_16 == pytest.approx(8.0)

    def test_capped_at_one(self):
        query = star_query(2)  # tau* = 1: no lower bound bites
        bound = knowledge_bound(query, p=2, eps=Fraction(0), c=10.0)
        assert bound.all_servers_fraction == 1.0

    def test_union_bound_is_p_times_per_server(self):
        query = line_query(3)
        bound = knowledge_bound(query, p=16, eps=Fraction(0))
        assert bound.all_servers_fraction == pytest.approx(
            min(1.0, 16 * bound.per_server_fraction)
        )

    def test_measured_fraction_respects_ceiling(self):
        """The Prop 3.11 algorithm must stay below the Thm 3.3 ceiling
        (with the theorem's own constant)."""
        from repro.algorithms.partial import run_partial_hypercube
        from repro.data.matching import matching_database

        query = line_query(3)
        for p in (8, 32):
            ceiling = knowledge_bound(
                query, p=p, eps=Fraction(0), c=4.0
            ).all_servers_fraction
            database = matching_database(query, n=120, rng=p)
            result = run_partial_hypercube(
                query, database, p=p, eps=Fraction(0), seed=p
            )
            assert result.reported_fraction <= ceiling


class TestFailureFloor:
    def test_tree_like_floor_near_one(self):
        """chi = 0: failure probability floor approaches 1 as p grows."""
        query = line_query(3)
        floor = failure_probability_floor(query, n=100, p=1024, eps=Fraction(0))
        assert floor > 0.9

    def test_cycle_floor_scales_with_inverse_n(self):
        query = cycle_query(3)
        floor = failure_probability_floor(query, n=100, p=10**6, eps=Fraction(0))
        assert floor == pytest.approx(1 / 100, rel=0.2)

    def test_disconnected_rejected(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        with pytest.raises(QueryError):
            failure_probability_floor(query, n=10, p=4, eps=Fraction(0))
