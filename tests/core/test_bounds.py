"""Unit tests for every closed-form bound of the paper."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.bounds import (
    cc_round_lower_bound,
    cycle_round_lower_bound,
    expected_answer_size,
    k_eps,
    m_eps,
    one_round_answer_fraction,
    round_lower_bound,
    round_upper_bound,
    space_exponent_lower_bound,
)
from repro.core.covers import covering_number
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import Atom, ConjunctiveQuery, QueryError, parse_query


class TestKepsMeps:
    @pytest.mark.parametrize(
        "eps,expected",
        [
            (Fraction(0), 2),
            (Fraction(1, 4), 2),
            (Fraction(1, 2), 4),
            (Fraction(2, 3), 6),
            (Fraction(3, 4), 8),
        ],
    )
    def test_k_eps(self, eps, expected):
        assert k_eps(eps) == expected

    @pytest.mark.parametrize(
        "eps,expected",
        [
            (Fraction(0), 2),
            (Fraction(1, 3), 3),
            (Fraction(1, 2), 4),
            (Fraction(2, 3), 6),
        ],
    )
    def test_m_eps(self, eps, expected):
        assert m_eps(eps) == expected

    def test_k_eps_characterises_one_round_lines(self):
        """L_k in Gamma^1_eps iff k <= k_eps."""
        from repro.core.plans import in_gamma_one

        for eps in (Fraction(0), Fraction(1, 2), Fraction(2, 3)):
            boundary = k_eps(eps)
            assert in_gamma_one(line_query(boundary), eps)
            assert not in_gamma_one(line_query(boundary + 1), eps)

    def test_m_eps_characterises_one_round_cycles(self):
        from repro.core.plans import in_gamma_one

        for eps in (Fraction(1, 3), Fraction(1, 2), Fraction(2, 3)):
            boundary = m_eps(eps)
            if boundary >= 3:
                assert in_gamma_one(cycle_query(boundary), eps)
            assert not in_gamma_one(cycle_query(boundary + 1), eps)

    def test_invalid_eps_rejected(self):
        with pytest.raises(ValueError):
            k_eps(Fraction(1))
        with pytest.raises(ValueError):
            m_eps(Fraction(-1, 2))


class TestSpaceExponentBound:
    def test_matches_covering_number(self):
        for query in (cycle_query(5), line_query(4), star_query(3)):
            assert space_exponent_lower_bound(query) == 1 - 1 / covering_number(query)

    def test_disconnected_rejected(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        with pytest.raises(QueryError):
            space_exponent_lower_bound(query)


class TestAnswerFraction:
    def test_decays_polynomially(self):
        query = cycle_query(3)  # tau* = 3/2
        # At eps = 0: fraction = p^{-1/2}.
        assert one_round_answer_fraction(query, 0, 4) == pytest.approx(0.5)
        assert one_round_answer_fraction(query, 0, 16) == pytest.approx(0.25)

    def test_capped_at_one_above_threshold(self):
        query = cycle_query(3)
        assert one_round_answer_fraction(query, Fraction(1, 3), 64) == 1.0
        assert one_round_answer_fraction(query, Fraction(1, 2), 64) == 1.0

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            one_round_answer_fraction(cycle_query(3), 0, 0)


class TestExpectedAnswerSize:
    def test_lemma_34_values(self):
        n = 50
        assert expected_answer_size(line_query(4), n) == n  # chi = 0
        assert expected_answer_size(cycle_query(4), n) == 1.0  # chi = -1
        assert expected_answer_size(star_query(3), n) == n

    def test_disconnected_multiplies(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        # Two independent matchings: n * n expected answers.
        assert expected_answer_size(query, 10) == 100

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            expected_answer_size(line_query(2), 0)


class TestRoundBounds:
    @pytest.mark.parametrize(
        "k,eps,expected",
        [
            (4, Fraction(0), 2),
            (8, Fraction(0), 3),
            (16, Fraction(0), 4),
            (16, Fraction(1, 2), 2),
            (16, Fraction(2, 3), 2),
        ],
    )
    def test_line_lower_bounds(self, k, eps, expected):
        """Corollary 4.8 with diam(L_k) = k."""
        assert round_lower_bound(line_query(k), eps) == expected

    def test_lower_bound_requires_tree_like(self):
        with pytest.raises(QueryError, match="tree-like"):
            round_lower_bound(cycle_query(5), Fraction(0))

    @pytest.mark.parametrize(
        "query,eps,expected",
        [
            (line_query(8), Fraction(0), 3),     # ceil(log2 rad=4) + 1
            (line_query(16), Fraction(0), 4),
            (star_query(5), Fraction(0), 1),     # already Gamma^1
            (cycle_query(5), Fraction(0), 3),    # non-tree-like: rad+1
        ],
        ids=["L8", "L16", "T5", "C5"],
    )
    def test_upper_bounds(self, query, eps, expected):
        assert round_upper_bound(query, eps) == expected

    def test_bounds_bracket_each_other(self):
        """rlow <= rup <= rlow + 1 for tree-like queries (Thm 1.2)."""
        for k in (3, 4, 7, 10, 16):
            for eps in (Fraction(0), Fraction(1, 2)):
                query = line_query(k)
                low = round_lower_bound(query, eps)
                high = round_upper_bound(query, eps)
                assert low <= high <= low + 1

    def test_upper_bound_disconnected_rejected(self):
        query = ConjunctiveQuery(
            [Atom("R", ("x", "y")), Atom("S", ("u", "v"))]
        )
        with pytest.raises(QueryError):
            round_upper_bound(query, Fraction(0))


class TestCycleAndCC:
    @pytest.mark.parametrize(
        "k,eps,expected",
        [
            (8, Fraction(0), 3),   # ceil(log2(8/3)) + 1
            (5, Fraction(0), 2),   # ceil(log2(5/3)) + 1
            (16, Fraction(0), 4),
        ],
    )
    def test_cycle_lower_bound(self, k, eps, expected):
        assert cycle_round_lower_bound(k, eps) == expected

    def test_cycle_small_k_rejected(self):
        with pytest.raises(ValueError):
            cycle_round_lower_bound(2, Fraction(0))

    def test_cc_bound_grows_with_p(self):
        values = [cc_round_lower_bound(p, Fraction(0)) for p in (16, 256, 65536)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_cc_bound_minimum_one(self):
        assert cc_round_lower_bound(2, Fraction(0)) >= 1

    def test_cc_invalid_p(self):
        with pytest.raises(ValueError):
            cc_round_lower_bound(1, Fraction(0))

    def test_witness_query_tau(self):
        """Prop 3.12's chain has tau* = 2, hence fraction p^{-(2(1-eps)-1)}."""
        chain = parse_query("S1(w,x), S2(x,y), S3(y,z)")
        assert covering_number(chain) == 2
        assert one_round_answer_fraction(chain, 0, 16) == pytest.approx(1 / 16)
