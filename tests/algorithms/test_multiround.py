"""Unit tests for the multi-round plan executor (Proposition 4.1)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.multiround import run_plan
from repro.core.families import (
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.plans import build_plan
from repro.data.matching import matching_database


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "query,eps",
        [
            (line_query(4), Fraction(0)),
            (line_query(5), Fraction(0)),
            (line_query(8), Fraction(0)),
            (line_query(8), Fraction(1, 2)),
            (line_query(16), Fraction(1, 2)),
            (cycle_query(5), Fraction(0)),
            (cycle_query(6), Fraction(0)),
            (spider_query(3), Fraction(0)),
            (star_query(4), Fraction(0)),
        ],
        ids=lambda value: str(value) if isinstance(value, Fraction) else value.name,
    )
    def test_plan_execution_equals_exact_join(self, query, eps):
        database = matching_database(query, n=40, rng=21)
        plan = build_plan(query, eps)
        result = run_plan(plan, database, p=8, seed=4)
        assert result.answers == truth_of(query, database)

    @pytest.mark.parametrize("p", [1, 2, 7, 16])
    def test_any_worker_count(self, p):
        query = line_query(6)
        database = matching_database(query, n=30, rng=9)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=p, seed=1)
        assert result.answers == truth_of(query, database)

    @pytest.mark.parametrize("seed", range(4))
    def test_any_seed(self, seed):
        query = cycle_query(5)
        database = matching_database(query, n=24, rng=3)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=4, seed=seed)
        assert result.answers == truth_of(query, database)


class TestRoundAccounting:
    def test_rounds_equal_plan_depth(self):
        for k, eps in ((8, Fraction(0)), (16, Fraction(1, 2))):
            query = line_query(k)
            database = matching_database(query, n=20, rng=2)
            plan = build_plan(query, eps)
            result = run_plan(plan, database, p=4, seed=0)
            assert result.rounds_used == plan.depth

    def test_view_sizes_recorded(self):
        query = line_query(4)
        database = matching_database(query, n=25, rng=6)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=4, seed=0)
        assert result.view_sizes
        # On matchings every full-join view of a chain has n tuples.
        assert all(size == 25 for size in result.view_sizes.values())

    def test_input_servers_only_round_one(self):
        """The executor must respect the tuple-based model: all
        round >= 2 traffic comes from workers, which the simulator
        enforces (ProtocolError otherwise)."""
        query = line_query(8)
        database = matching_database(query, n=20, rng=1)
        plan = build_plan(query, Fraction(0))
        # Simply running without ProtocolError is the assertion.
        result = run_plan(plan, database, p=4, seed=0)
        assert result.rounds_used == 3


class TestHeadOrdering:
    def test_answers_in_query_head_order(self):
        query = line_query(3)
        database = matching_database(query, n=15, rng=8)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=4, seed=0)
        truth = truth_of(query, database)
        assert result.answers == truth
        # Column i of the answers corresponds to head variable i.
        for row in result.answers[:3]:
            assert len(row) == len(query.head)
