"""Unit tests for skew-aware HyperCube routing."""

from __future__ import annotations

import pytest

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.skewaware import (
    detect_heavy_hitters,
    run_hypercube_skew_aware,
)
from repro.core.families import cycle_query, line_query
from repro.core.query import parse_query
from repro.data.database import Database, Relation
from repro.data.matching import matching_database


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


def skewed_two_hop(n=128):
    """S1 funnels everything into y = 1; S2 fans out of y = 1."""
    query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
    database = Database.from_relations(
        [
            Relation.from_tuples(
                "S1", [(i, 1) for i in range(1, n + 1)], n
            ),
            Relation.from_tuples(
                "S2", [(1, i) for i in range(1, n + 1)], n
            ),
        ]
    )
    return query, database


class TestHeavyHitterDetection:
    def test_no_heavy_hitters_on_matchings(self):
        query = cycle_query(3)
        database = matching_database(query, n=60, rng=1)
        heavy = detect_heavy_hitters(
            query, database, {"x1": 4, "x2": 4, "x3": 4}
        )
        assert all(not values for values in heavy.values())

    def test_funnel_value_detected(self):
        query, database = skewed_two_hop()
        heavy = detect_heavy_hitters(
            query, database, {"x": 1, "y": 8, "z": 1}
        )
        assert 1 in heavy["y"]
        assert len(heavy["y"]) == 1

    def test_share_one_dimensions_skipped(self):
        query, database = skewed_two_hop()
        heavy = detect_heavy_hitters(
            query, database, {"x": 1, "y": 1, "z": 1}
        )
        assert all(not values for values in heavy.values())


class TestCorrectness:
    def test_correct_on_matchings(self):
        query = cycle_query(3)
        database = matching_database(query, n=50, rng=2)
        result = run_hypercube_skew_aware(query, database, p=8, seed=3)
        assert result.answers == truth_of(query, database)

    def test_correct_on_skewed_input(self):
        query, database = skewed_two_hop()
        result = run_hypercube_skew_aware(query, database, p=16, seed=1)
        assert result.answers == truth_of(query, database)
        assert result.heavy_hitters["y"]

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_plain_hc_on_matchings(self, seed):
        """No heavy hitters => identical answers and loads to plain HC."""
        query = line_query(3)
        database = matching_database(query, n=40, rng=7)
        plain = run_hypercube(query, database, p=9, seed=seed)
        aware = run_hypercube_skew_aware(query, database, p=9, seed=seed)
        assert plain.answers == aware.answers
        assert (
            plain.report.rounds[0].received_bits
            == aware.report.rounds[0].received_bits
        )


class TestLoadImprovement:
    def test_skew_aware_beats_plain_on_funnel(self):
        """On the funnel instance, plain HC piles every S2 tuple on one
        server; spreading the heavy value rebalances."""
        query, database = skewed_two_hop()
        plain = run_hypercube(query, database, p=16, seed=5)
        aware = run_hypercube_skew_aware(query, database, p=16, seed=5)
        assert aware.answers == plain.answers
        assert (
            aware.report.rounds[0].load_imbalance
            < plain.report.rounds[0].load_imbalance
        )
        assert (
            aware.report.max_load_tuples < plain.report.max_load_tuples
        )
