"""Algorithm registry: compilers, cost models, uniform dispatch."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.hypercube import compile_hypercube
from repro.algorithms.multiround import compile_multiround
from repro.algorithms.partial import compile_partial_hypercube
from repro.algorithms.registry import (
    algorithm_names,
    compile_with,
    get_algorithm,
)
from repro.algorithms.skewaware import compile_skew_aware
from repro.core.plans import build_plan
from repro.core.query import QueryError, parse_query
from repro.planner.stats import DataProfile


def _profile(query, rows_per_relation=100, heavy=()):
    relation_rows = tuple(
        (atom.name, rows_per_relation) for atom in query.atoms
    )
    return DataProfile(
        relation_rows=relation_rows,
        total_rows=rows_per_relation * len(relation_rows),
        heavy_values=tuple((v, 1) for v, _ in heavy),
        heavy_multiplicities=tuple(heavy),
        sampled=False,
    )


class TestRegistryContents:
    def test_all_four_compilers_registered(self):
        assert algorithm_names() == (
            "hypercube",
            "multiround",
            "partial",
            "skewaware",
        )

    def test_unknown_name_is_a_query_error_listing_options(self):
        with pytest.raises(QueryError, match="hypercube"):
            get_algorithm("nope")

    def test_specs_declare_run_star_replacements(self):
        assert get_algorithm("hypercube").replaces == "run_hypercube"
        assert get_algorithm("partial").exact is False
        assert get_algorithm("hypercube").exact is True

    def test_default_capacities_match_run_star(self):
        assert get_algorithm("hypercube").default_capacity_c == 4.0
        assert get_algorithm("multiround").default_capacity_c == 8.0


class TestCompileWith:
    def test_hypercube_matches_direct_compile(self, two_hop):
        via_registry = compile_with("hypercube", two_hop, 16, seed=3)
        direct = compile_hypercube(two_hop, 16, seed=3)
        assert via_registry.signature == direct.signature
        assert via_registry.describe() == direct.describe()

    def test_skewaware_matches_direct_compile(self, two_hop):
        via_registry = compile_with("skewaware", two_hop, 16)
        direct = compile_skew_aware(two_hop, 16)
        assert via_registry.signature == direct.signature
        assert via_registry.describe() == direct.describe()

    def test_multiround_builds_the_logical_plan(self, chain4):
        via_registry = compile_with("multiround", chain4, 16)
        direct = compile_multiround(build_plan(chain4, Fraction(0)), 16)
        assert via_registry.signature == direct.signature
        assert via_registry.describe() == direct.describe()

    def test_partial_requires_eps(self, triangle):
        with pytest.raises(QueryError, match="eps"):
            compile_with("partial", triangle, 16)
        via_registry = compile_with(
            "partial", triangle, 16, eps=Fraction(0)
        )
        direct = compile_partial_hypercube(triangle, 16, Fraction(0))
        assert via_registry.signature == direct.signature

    def test_partial_rejects_enforce_capacity(self, triangle):
        with pytest.raises(QueryError, match="capacity"):
            compile_with(
                "partial",
                triangle,
                16,
                eps=Fraction(0),
                enforce_capacity=True,
            )

    def test_capacity_none_resolves_per_algorithm_default(self, two_hop):
        hc = compile_with("hypercube", two_hop, 16)
        mr = compile_with("multiround", two_hop, 16)
        assert hc.signature.capacity_c == 4.0
        assert mr.signature.capacity_c == 8.0


class TestCostModels:
    def test_one_round_ineligible_below_space_exponent(self, triangle):
        profile = _profile(triangle)
        for name in ("hypercube", "skewaware"):
            estimate = get_algorithm(name).cost(
                triangle, profile, 16, Fraction(0)
            )
            assert not estimate.eligible
            assert "Theorem 3.3" in estimate.reason

    def test_hypercube_beats_multiround_on_short_queries(self, triangle):
        profile = _profile(triangle)
        hc = get_algorithm("hypercube").cost(triangle, profile, 16, None)
        mr = get_algorithm("multiround").cost(triangle, profile, 16, None)
        assert hc.eligible and mr.eligible
        assert hc.cost < mr.cost

    def test_multiround_beats_hypercube_on_long_chains(self):
        chain = parse_query(
            "S1(a,b), S2(b,c), S3(c,d), S4(d,e), S5(e,f), S6(f,g)"
        )
        profile = _profile(chain)
        hc = get_algorithm("hypercube").cost(chain, profile, 16, None)
        mr = get_algorithm("multiround").cost(chain, profile, 16, None)
        assert mr.cost < hc.cost
        assert mr.rounds > 1

    def test_skew_flips_the_one_round_duel(self, two_hop):
        skew_free = _profile(two_hop)
        hc = get_algorithm("hypercube").cost(two_hop, skew_free, 16, None)
        sa = get_algorithm("skewaware").cost(two_hop, skew_free, 16, None)
        assert hc.cost < sa.cost  # tie-break prefers plain HC
        skewed = _profile(two_hop, heavy=(("y", 80),))
        hc = get_algorithm("hypercube").cost(two_hop, skewed, 16, None)
        sa = get_algorithm("skewaware").cost(two_hop, skewed, 16, None)
        assert sa.cost < hc.cost
        assert hc.predicted_load >= 80  # full concentration
        assert sa.predicted_load < hc.predicted_load

    def test_partial_cost_needs_low_eps(self, triangle):
        profile = _profile(triangle)
        spec = get_algorithm("partial")
        assert not spec.cost(triangle, profile, 16, None).eligible
        assert not spec.cost(
            triangle, profile, 16, Fraction(1, 2)
        ).eligible  # above the space exponent 1/3
        assert spec.cost(triangle, profile, 16, Fraction(0)).eligible

    def test_shares_reported_for_one_round_algorithms(self, two_hop):
        profile = _profile(two_hop)
        estimate = get_algorithm("hypercube").cost(
            two_hop, profile, 16, None
        )
        assert dict(estimate.shares)["y"] == 16
