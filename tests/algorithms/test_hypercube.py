"""Unit tests for the HyperCube algorithm (Proposition 3.2)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.hypercube import hc_destinations, run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.query import Atom, parse_query
from repro.data.database import Database, Relation
from repro.data.matching import matching_database
from repro.mpc.routing import HashFamily


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        [
            cycle_query(3),
            cycle_query(4),
            line_query(2),
            line_query(3),
            line_query(4),
            star_query(3),
            spider_query(2),
            binomial_query(3, 2),
        ],
        ids=lambda q: q.name,
    )
    def test_equals_exact_join_on_matchings(self, query):
        database = matching_database(query, n=40, rng=11)
        result = run_hypercube(query, database, p=8, seed=2)
        assert result.answers == truth_of(query, database)

    @pytest.mark.parametrize("p", [1, 2, 5, 16, 30, 64])
    def test_correct_for_any_p(self, triangle, triangle_db, p):
        result = run_hypercube(triangle, triangle_db, p=p, seed=1)
        assert result.answers == truth_of(triangle, triangle_db)

    @pytest.mark.parametrize("seed", range(5))
    def test_correct_for_any_seed(self, chain4, chain4_db, seed):
        result = run_hypercube(chain4, chain4_db, p=9, seed=seed)
        assert result.answers == truth_of(chain4, chain4_db)

    def test_correct_on_non_matching_input(self, triangle):
        """HC never misses answers regardless of skew (only the load
        guarantee needs the matching assumption)."""
        rows = [(1, i) for i in range(2, 12)] + [(i, i) for i in range(2, 12)]
        database = Database.from_relations(
            [
                Relation.from_tuples("S1", rows, 16),
                Relation.from_tuples("S2", rows, 16),
                Relation.from_tuples("S3", [(i, 1) for i in range(2, 12)], 16),
            ]
        )
        result = run_hypercube(triangle, database, p=8, seed=0)
        assert result.answers == truth_of(triangle, database)

    def test_ternary_relations(self):
        query = parse_query("R(x,y,z), S(z,w)")
        database = matching_database(query, n=30, rng=5)
        result = run_hypercube(query, database, p=8, seed=3)
        assert result.answers == truth_of(query, database)


class TestRouting:
    def test_every_potential_answer_is_assembled_somewhere(self, triangle):
        """The defining HC property: matching tuples meet at the grid
        point given by the hashes of the answer's values."""
        shares = {"x1": 2, "x2": 2, "x3": 2}
        hashes = HashFamily(seed=7)
        order = triangle.variables
        row = (4, 9)
        s1_dests = set(
            hc_destinations(triangle.atom("S1"), row, shares, order, hashes)
        )
        # S1(4, 9) pins x1, x2; the free dimension x3 is replicated.
        assert len(s1_dests) == 2

    def test_repeated_variable_mismatch_routes_nowhere(self):
        atom = Atom("S", ("x", "x"))
        shares = {"x": 4}
        hashes = HashFamily(seed=0)
        assert hc_destinations(atom, (1, 2), shares, ("x",), hashes) == []
        assert len(
            hc_destinations(atom, (3, 3), shares, ("x",), hashes)
        ) == 1

    def test_replication_matches_free_dimensions(self, chain4):
        shares = {"x0": 2, "x1": 3, "x2": 2, "x3": 1, "x4": 2}
        hashes = HashFamily(seed=1)
        destinations = hc_destinations(
            chain4.atom("S2"), (5, 6), shares, chain4.variables, hashes
        )
        # S2 pins x1, x2; free dims are x0 (2), x3 (1), x4 (2): 4 copies.
        assert len(destinations) == len(set(destinations)) == 4


class TestLoads:
    def test_load_obeys_proposition_32(self):
        """Max load ~ l * n / p^{1/tau} tuples, within small constants."""
        query = cycle_query(3)
        n = 400
        database = matching_database(query, n=n, rng=3)
        result = run_hypercube(query, database, p=27, seed=5)
        bound = query.num_atoms * n / 27 ** (2 / 3)  # tau = 3/2
        assert result.report.max_load_tuples <= 3 * bound

    def test_replication_rate_tracks_space_exponent(self):
        query = cycle_query(3)
        database = matching_database(query, n=200, rng=4)
        result = run_hypercube(query, database, p=27, seed=6)
        # eps = 1/3: replication should be ~ p^{1/3} = 3.
        assert 2.0 <= result.report.replication_rate <= 4.5

    def test_star_query_no_replication(self):
        query = star_query(3)
        database = matching_database(query, n=100, rng=8)
        result = run_hypercube(query, database, p=16, seed=2)
        assert result.report.replication_rate == pytest.approx(1.0)

    def test_one_round_only(self, triangle, triangle_db):
        result = run_hypercube(triangle, triangle_db, p=8, seed=0)
        assert result.report.num_rounds == 1

    def test_capacity_enforcement_passes_at_own_exponent(self, triangle, triangle_db):
        result = run_hypercube(
            triangle,
            triangle_db,
            p=8,
            seed=0,
            enforce_capacity=True,
            capacity_c=6.0,
        )
        assert result.answers == truth_of(triangle, triangle_db)

    def test_skew_breaks_load_balance(self):
        """With all-equal join values the hash cannot spread the load:
        the matching assumption is load-bearing (Section 2.5)."""
        n = 128
        skew_rows = [(i, 1) for i in range(1, n + 1)]
        match_rows = [(i, i) for i in range(1, n + 1)]
        database = Database.from_relations(
            [
                Relation.from_tuples("S1", skew_rows, n),
                Relation.from_tuples("S2", [(1, i) for i in range(1, n + 1)], n),
            ]
        )
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        skewed = run_hypercube(query, database, p=16, seed=1)
        balanced_db = Database.from_relations(
            [
                Relation.from_tuples("S1", match_rows, n),
                Relation.from_tuples("S2", match_rows, n),
            ]
        )
        balanced = run_hypercube(query, balanced_db, p=16, seed=1)
        assert (
            skewed.report.max_load_tuples
            > 3 * balanced.report.max_load_tuples
        )


class TestAllocationPlumbing:
    def test_allocation_reported(self, triangle, triangle_db):
        result = run_hypercube(triangle, triangle_db, p=27, seed=0)
        assert result.allocation.used_servers <= 27
        assert set(result.allocation.shares) == set(triangle.variables)

    def test_per_server_answer_counts_sum_consistently(self, chain4, chain4_db):
        result = run_hypercube(chain4, chain4_db, p=8, seed=0)
        assert len(result.per_server_answers) == 8
        assert sum(result.per_server_answers) >= len(result.answers)


class _CountingHashFamily(HashFamily):
    """Spy: counts scalar hash evaluations (shared mutable counter)."""

    calls: list[int] = []

    def hash_value(self, dimension, value, buckets):
        self.calls.append(value)
        return super().hash_value(dimension, value, buckets)


class TestRepeatedVariableAtoms:
    """Regression tests: repeated variables are equality selections
    and contradictory rows must short-circuit before any hashing."""

    def test_contradictory_row_hashes_nothing(self):
        atom = Atom("S", ("x", "x"))
        spy = _CountingHashFamily(seed=0)
        _CountingHashFamily.calls = []
        assert hc_destinations(atom, (1, 2), {"x": 4}, ("x",), spy) == []
        assert _CountingHashFamily.calls == []

    def test_consistent_row_hashes_once_per_distinct_variable(self):
        atom = Atom("S", ("x", "x", "y"))
        spy = _CountingHashFamily(seed=0)
        _CountingHashFamily.calls = []
        destinations = hc_destinations(
            atom, (3, 3, 5), {"x": 4, "y": 2}, ("x", "y"), spy
        )
        assert len(destinations) == 1
        assert len(_CountingHashFamily.calls) == 2  # x once, y once

    def test_triple_repeat_contradiction_detected_late_position(self):
        atom = Atom("S", ("x", "x", "x"))
        spy = _CountingHashFamily(seed=1)
        _CountingHashFamily.calls = []
        assert (
            hc_destinations(atom, (2, 2, 7), {"x": 8}, ("x",), spy) == []
        )
        assert _CountingHashFamily.calls == []

    @pytest.mark.parametrize("backend", ["pure", "numpy"])
    def test_run_hypercube_with_repeated_variable_atom(self, backend):
        if backend == "numpy":
            from repro.backend import numpy_available

            if not numpy_available():
                pytest.skip("numpy backend unavailable")
        query = parse_query("q(x,y) = S(x, x), T(x, y)")
        rows_s = [(i, i) for i in range(1, 8)] + [(i, i + 1) for i in range(1, 8)]
        rows_t = [(i, 9 - i) for i in range(1, 9)]
        database = Database.from_relations(
            [
                Relation.from_tuples("S", rows_s, 9),
                Relation.from_tuples("T", rows_t, 9),
            ]
        )
        result = run_hypercube(query, database, p=8, seed=2, backend=backend)
        assert result.answers == truth_of(query, database)
        assert result.answers  # equality-satisfying rows do join
