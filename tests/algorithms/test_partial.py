"""Unit tests for the Proposition 3.11 partial-answer algorithm."""

from __future__ import annotations

import statistics
from fractions import Fraction

import pytest

from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.partial import run_partial_hypercube
from repro.core.bounds import one_round_answer_fraction
from repro.core.families import cycle_query, line_query
from repro.data.matching import matching_database


class TestSoundness:
    def test_reported_answers_are_correct(self):
        query = line_query(3)
        database = matching_database(query, n=60, rng=3)
        result = run_partial_hypercube(
            query, database, p=8, eps=Fraction(0), seed=1
        )
        truth = set(
            evaluate_query(
                query,
                {name: database[name].tuples for name in database.relations},
            )
        )
        assert set(result.answers) <= truth
        assert result.total_answers == len(truth)

    def test_fraction_fields_consistent(self):
        query = line_query(3)
        database = matching_database(query, n=60, rng=4)
        result = run_partial_hypercube(
            query, database, p=8, eps=Fraction(0), seed=2
        )
        assert result.reported_fraction == pytest.approx(
            len(result.answers) / result.total_answers
        )

    def test_runs_one_round(self):
        query = cycle_query(3)
        database = matching_database(query, n=50, rng=5)
        result = run_partial_hypercube(
            query, database, p=8, eps=Fraction(0), seed=0
        )
        assert result.report.num_rounds == 1


class TestTheoremThreeThree:
    """Measured fraction tracks p^{-(tau*(1-eps)-1)} (Thm 3.3 tight)."""

    def test_l3_fraction_decays_like_one_over_p(self):
        query = line_query(3)  # tau* = 2, eps = 0 -> fraction ~ 1/p
        n, trials = 128, 8
        for p in (4, 16):
            fractions = []
            for seed in range(trials):
                database = matching_database(query, n=n, rng=seed)
                result = run_partial_hypercube(
                    query, database, p=p, eps=Fraction(0), seed=seed
                )
                fractions.append(result.reported_fraction)
            measured = statistics.mean(fractions)
            theory = one_round_answer_fraction(query, Fraction(0), p)
            assert 0.2 * theory <= measured <= 5 * theory, (p, measured, theory)

    def test_more_servers_fewer_answers(self):
        """The paper's punchline: more parallelism = smaller fraction."""
        query = line_query(3)
        n, trials = 128, 10
        means = []
        for p in (4, 64):
            fractions = []
            for seed in range(trials):
                database = matching_database(query, n=n, rng=100 + seed)
                result = run_partial_hypercube(
                    query, database, p=p, eps=Fraction(0), seed=seed
                )
                fractions.append(result.reported_fraction)
            means.append(statistics.mean(fractions))
        assert means[1] < means[0]

    def test_virtual_grid_exceeds_p_below_threshold(self):
        query = cycle_query(3)
        database = matching_database(query, n=30, rng=1)
        result = run_partial_hypercube(
            query, database, p=16, eps=Fraction(0), seed=1
        )
        assert result.virtual_grid_points > 16
        assert result.theory_fraction < 1.0

    def test_at_space_exponent_reports_everything(self):
        """At eps = eps(q) the virtual grid is ~p: full recovery."""
        query = line_query(3)  # eps(L3) = 1/2
        database = matching_database(query, n=64, rng=2)
        result = run_partial_hypercube(
            query, database, p=16, eps=Fraction(1, 2), seed=3
        )
        assert result.reported_fraction == 1.0


class TestBackendParity:
    @pytest.mark.parametrize("seed", range(3))
    def test_pure_equals_numpy(self, seed):
        from repro.backend import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")
        query = cycle_query(3)
        database = matching_database(query, n=90, rng=50 + seed)
        pure = run_partial_hypercube(
            query, database, p=16, eps=Fraction(0), seed=seed,
            backend="pure",
        )
        vectorized = run_partial_hypercube(
            query, database, p=16, eps=Fraction(0), seed=seed,
            backend="numpy",
        )
        assert vectorized.answers == pure.answers
        assert vectorized.reported_fraction == pure.reported_fraction
        assert vectorized.virtual_grid_points == pure.virtual_grid_points
        assert (
            vectorized.report.rounds[0].received_bits
            == pure.report.rounds[0].received_bits
        )
        assert (
            vectorized.report.rounds[0].received_tuples
            == pure.report.rounds[0].received_tuples
        )
