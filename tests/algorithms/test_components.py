"""Unit tests for CONNECTED-COMPONENTS algorithms (Theorem 4.10)."""

from __future__ import annotations

import pytest

from repro.algorithms.components import (
    run_dense_two_round,
    run_hash_to_min,
)
from repro.data.generators import dense_graph, layered_path_graph


class TestHashToMin:
    @pytest.mark.parametrize("layers,size", [(1, 5), (3, 8), (6, 10)])
    def test_correct_on_layered_graphs(self, layers, size):
        graph = layered_path_graph(layers, size, rng=4)
        result = run_hash_to_min(graph, p=4, seed=1)
        assert result.correct
        assert result.labels == graph.labels

    def test_correct_on_random_graphs(self):
        graph = dense_graph(40, 60, rng=2)
        result = run_hash_to_min(graph, p=4, seed=0)
        assert result.correct

    def test_rounds_grow_with_path_length(self):
        rounds = []
        for layers in (2, 8, 32):
            graph = layered_path_graph(layers, 8, rng=7)
            result = run_hash_to_min(graph, p=8, seed=2)
            assert result.correct
            rounds.append(result.rounds_used)
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]

    def test_rounds_logarithmic_in_diameter(self):
        """Hash-to-Min converges in O(log d) rounds."""
        graph = layered_path_graph(64, 4, rng=3)
        result = run_hash_to_min(graph, p=8, seed=3, max_rounds=32)
        assert result.correct
        assert result.rounds_used <= 12  # log2(64) + slack

    def test_single_component(self):
        graph = layered_path_graph(5, 1, rng=0)
        result = run_hash_to_min(graph, p=2, seed=0)
        assert result.correct
        assert set(result.labels.values()) == {1}

    def test_isolated_vertices(self):
        from repro.data.generators import GraphInstance

        graph = GraphInstance(
            num_vertices=4,
            edges=((1, 2),),
            labels={1: 1, 2: 1, 3: 3, 4: 4},
        )
        result = run_hash_to_min(graph, p=2, seed=0)
        assert result.correct


class TestDenseTwoRound:
    def test_always_two_rounds(self):
        for p in (2, 8, 32):
            graph = dense_graph(40, 300, rng=1)
            result = run_dense_two_round(graph, p=p, seed=1)
            assert result.rounds_used == 2
            assert result.correct

    def test_correct_on_sparse_too(self):
        """Correctness never depends on density (only the load does)."""
        graph = layered_path_graph(6, 10, rng=5)
        result = run_dense_two_round(graph, p=4, seed=0)
        assert result.correct

    def test_forest_compression_bounds_coordinator_load(self):
        """The coordinator receives at most p * (n-1) forest edges,
        independent of m: that is the density win of [16]."""
        n, m, p = 60, 1200, 8
        graph = dense_graph(n, m, rng=6)
        result = run_dense_two_round(graph, p=p, seed=2)
        round1 = result.report.rounds[0]
        # Forest edges <= p * (n - 1), far below m.
        assert round1.total_tuples <= p * (n - 1)
        assert round1.total_tuples < m


class TestShapeContrast:
    def test_sparse_needs_more_rounds_than_dense_at_scale(self):
        p = 64
        sparse = layered_path_graph(
            num_layers=8, layer_size=16, rng=8
        )
        dense = dense_graph(num_vertices=8 * p, num_edges=4096, rng=8)
        sparse_rounds = run_hash_to_min(sparse, p=p, seed=4).rounds_used
        dense_rounds = run_dense_two_round(dense, p=p, seed=4).rounds_used
        assert dense_rounds == 2
        assert sparse_rounds > 2


class TestHashToMinBackends:
    """The engine port runs identically under both backends."""

    def test_backend_parity(self):
        pytest.importorskip("numpy")
        from repro.backend import numpy_available

        if not numpy_available():
            pytest.skip("numpy disabled")
        graph = layered_path_graph(6, 12, rng=11)
        pure = run_hash_to_min(graph, p=8, seed=5, backend="pure")
        vectorized = run_hash_to_min(graph, p=8, seed=5, backend="numpy")
        assert pure.correct and vectorized.correct
        assert pure.labels == vectorized.labels
        assert pure.rounds_used == vectorized.rounds_used
        for round_pure, round_vec in zip(
            pure.report.rounds, vectorized.report.rounds
        ):
            assert round_pure.received_bits == round_vec.received_bits

    def test_rounds_counted_on_simulator(self):
        """Every iteration is a real engine round (no side channel)."""
        graph = layered_path_graph(4, 6, rng=1)
        result = run_hash_to_min(graph, p=4, seed=0)
        assert result.rounds_used == result.report.num_rounds
        assert result.rounds_used >= 1
