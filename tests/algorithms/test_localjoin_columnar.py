"""The vectorized local join must agree with the reference evaluator."""

from __future__ import annotations

import random

import pytest

from repro.backend import numpy_available

if not numpy_available():
    pytest.skip("numpy backend unavailable", allow_module_level=True)

import numpy

from repro.algorithms.localjoin import (
    evaluate_query,
    evaluate_query_columnar,
)
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import parse_query


def as_columns(rows):
    if not rows:
        return (numpy.zeros(0, dtype=numpy.int64),)
    return tuple(
        numpy.asarray(column, dtype=numpy.int64) for column in zip(*rows)
    )


def random_instance(query, n, rows_per_atom, rng):
    return {
        atom.name: [
            tuple(rng.randint(1, n) for _ in range(atom.arity))
            for _ in range(rows_per_atom)
        ]
        for atom in query.atoms
    }


QUERIES = [
    cycle_query(3),
    cycle_query(4),
    line_query(2),
    line_query(4),
    star_query(3),
    parse_query("R(x,y,z), S(z,w)"),
    parse_query("q(x,y) = S(x, x), T(x, y)"),  # repeated variable
    parse_query("q(x,y) = A(x), B(y)"),  # cartesian (no shared vars)
]


class TestAgreesWithReference:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: str(q))
    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances(self, query, seed):
        rng = random.Random(seed)
        instance = random_instance(query, n=12, rows_per_atom=40, rng=rng)
        expected = evaluate_query(query, instance)
        actual = evaluate_query_columnar(
            query,
            {name: as_columns(rows) for name, rows in instance.items()},
        )
        assert actual == expected

    def test_duplicate_rows_are_deduplicated(self):
        query = line_query(2)
        rows = [(1, 2), (1, 2), (2, 3)]
        instance = {"S1": rows, "S2": rows}
        assert evaluate_query_columnar(
            query, {name: as_columns(r) for name, r in instance.items()}
        ) == evaluate_query(query, instance)

    def test_assume_unique_same_answer_set(self):
        query = cycle_query(3)
        rng = random.Random(7)
        instance = random_instance(query, n=10, rows_per_atom=60, rng=rng)
        # Inputs are made duplicate-free so the fast path is valid.
        instance = {
            name: sorted(set(rows)) for name, rows in instance.items()
        }
        fragments = {
            name: as_columns(rows) for name, rows in instance.items()
        }
        fast = evaluate_query_columnar(query, fragments, assume_unique=True)
        assert tuple(sorted(fast)) == evaluate_query(query, instance)
        assert len(fast) == len(set(fast))


class TestEdgeCases:
    def test_missing_relation_is_empty(self):
        query = line_query(2)
        assert evaluate_query_columnar(
            query, {"S1": as_columns([(1, 2)])}
        ) == ()

    def test_empty_relation_is_empty(self):
        query = line_query(2)
        assert evaluate_query_columnar(
            query, {"S1": as_columns([(1, 2)]), "S2": as_columns([])}
        ) == ()

    def test_repeated_variable_filters_rows(self):
        query = parse_query("q(x) = S(x, x)")
        fragments = {"S": as_columns([(1, 1), (1, 2), (3, 3)])}
        assert evaluate_query_columnar(query, fragments) == ((1,), (3,))

    def test_large_domain_multicolumn_key_falls_back(self):
        """Keys too wide to radix-pack go through the factorize path."""
        big = 1 << 22
        query = parse_query("q(x,y,z) = A(x,y,z), B(x,y,z)")
        rows = [(big - i, big - i, big - i) for i in range(1, 20)]
        fragments = {"A": as_columns(rows), "B": as_columns(rows[::2])}
        expected = evaluate_query(
            query, {"A": rows, "B": rows[::2]}
        )
        assert evaluate_query_columnar(query, fragments) == expected


class TestJoinPairsSorted:
    """The sort-free join branch agrees with the sorting one."""

    @pytest.mark.parametrize("seed", range(5))
    def test_pair_sets_identical(self, seed):
        from repro.algorithms.localjoin import _join_pairs

        rng = numpy.random.default_rng(seed)
        key_right = numpy.sort(rng.integers(0, 50, size=200))
        key_left = rng.integers(-5, 60, size=120)  # incl. out-of-range
        with_sort = _join_pairs(numpy, key_left, key_right)
        sort_free = _join_pairs(
            numpy, key_left, key_right, assume_sorted=True
        )
        expected = set(zip(with_sort[0].tolist(), with_sort[1].tolist()))
        actual = set(zip(sort_free[0].tolist(), sort_free[1].tolist()))
        assert actual == expected
        # Every pair really matches.
        for left, right in actual:
            assert key_left[left] == key_right[right]

    def test_wide_span_falls_back_to_searchsorted(self):
        """Keys too sparse for direct addressing still join correctly."""
        from repro.algorithms.localjoin import _join_pairs

        key_right = numpy.asarray([0, 10**15, 2 * 10**15])
        key_left = numpy.asarray([10**15, 5])
        left_index, right_index = _join_pairs(
            numpy, key_left, key_right, assume_sorted=True
        )
        assert left_index.tolist() == [0]
        assert right_index.tolist() == [1]

    def test_empty_sides(self):
        from repro.algorithms.localjoin import _join_pairs

        empty = numpy.zeros(0, dtype=numpy.int64)
        some = numpy.asarray([1, 2, 3])
        for assume_sorted in (False, True):
            left_index, right_index = _join_pairs(
                numpy, empty, some, assume_sorted=assume_sorted
            )
            assert len(left_index) == len(right_index) == 0
            left_index, right_index = _join_pairs(
                numpy, some, empty, assume_sorted=assume_sorted
            )
            assert len(left_index) == len(right_index) == 0


class TestSegmentedEvaluator:
    """evaluate_query_table_segmented == per-segment evaluation."""

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: str(q))
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_per_segment_reference(self, query, seed):
        from repro.algorithms.localjoin import (
            evaluate_query_table_segmented,
        )

        rng = random.Random(seed)
        num_segments = rng.choice([1, 3, 5])
        per_segment = [
            random_instance(query, n=10, rows_per_atom=25, rng=rng)
            for _ in range(num_segments)
        ]
        fragments = {}
        segments = {}
        for atom in query.atoms:
            rows, owners = [], []
            for segment_id, instance in enumerate(per_segment):
                for row in sorted(set(instance[atom.name])):
                    rows.append(row)
                    owners.append(segment_id)
            fragments[atom.name] = as_columns(rows)
            segments[atom.name] = numpy.asarray(owners, dtype=numpy.int64)
        answers, answer_segments = evaluate_query_table_segmented(
            query,
            fragments,
            segments,
            num_segments=num_segments,
            assume_unique=True,
        )
        got = {
            segment_id: set()
            for segment_id in range(num_segments)
        }
        for row, segment_id in zip(
            answers.tolist(), answer_segments.tolist()
        ):
            got[segment_id].add(tuple(row))
        for segment_id, instance in enumerate(per_segment):
            expected = set(evaluate_query(query, instance))
            assert got[segment_id] == expected, (query.name, segment_id)

    def test_sorted_relations_do_not_change_answers(self):
        from repro.algorithms.localjoin import (
            evaluate_query_table_segmented,
        )

        query = line_query(3)
        rng = random.Random(1)
        fragments, segments = {}, {}
        for atom in query.atoms:
            per_seg = [
                sorted(
                    set(
                        tuple(rng.randint(1, 8) for _ in range(atom.arity))
                        for _ in range(30)
                    )
                )
                for _ in range(4)
            ]
            rows = [row for seg_rows in per_seg for row in seg_rows]
            owners = [
                segment_id
                for segment_id, seg_rows in enumerate(per_seg)
                for _ in seg_rows
            ]
            fragments[atom.name] = as_columns(rows)
            segments[atom.name] = numpy.asarray(owners, dtype=numpy.int64)
        plain = evaluate_query_table_segmented(
            query, fragments, segments, num_segments=4, assume_unique=True
        )
        sorted_path = evaluate_query_table_segmented(
            query,
            fragments,
            segments,
            num_segments=4,
            assume_unique=True,
            sorted_relations={atom.name for atom in query.atoms},
        )
        def canonical(result):
            return sorted(
                (segment_id, tuple(row))
                for row, segment_id in zip(
                    result[0].tolist(), result[1].tolist()
                )
            )
        assert canonical(plain) == canonical(sorted_path)

    def test_dedup_path_removes_within_segment_duplicates(self):
        from repro.algorithms.localjoin import (
            evaluate_query_table_segmented,
        )

        query = parse_query("q(x,y) = S(x), T(x, y)")
        fragments = {
            "S": as_columns([(1,), (1,), (2,)]),
            "T": as_columns([(1, 5), (1, 5), (2, 6)]),
        }
        segments = {
            "S": numpy.asarray([0, 0, 1], dtype=numpy.int64),
            "T": numpy.asarray([0, 0, 1], dtype=numpy.int64),
        }
        answers, answer_segments = evaluate_query_table_segmented(
            query, fragments, segments, num_segments=2
        )
        assert sorted(
            (segment_id, tuple(row))
            for row, segment_id in zip(
                answers.tolist(), answer_segments.tolist()
            )
        ) == [(0, (1, 5)), (1, (2, 6))]

    def test_negative_sorted_keys_fall_back(self):
        """Non-decreasing but negative keys must not hit bincount."""
        from repro.algorithms.localjoin import _join_pairs

        left_index, right_index = _join_pairs(
            numpy,
            numpy.asarray([0, 3]),
            numpy.asarray([-5, 0, 3]),
            assume_sorted=True,
        )
        assert sorted(zip(left_index.tolist(), right_index.tolist())) == [
            (0, 1),
            (1, 2),
        ]
