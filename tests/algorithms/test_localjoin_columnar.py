"""The vectorized local join must agree with the reference evaluator."""

from __future__ import annotations

import random

import pytest

from repro.backend import numpy_available

if not numpy_available():
    pytest.skip("numpy backend unavailable", allow_module_level=True)

import numpy

from repro.algorithms.localjoin import (
    evaluate_query,
    evaluate_query_columnar,
)
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import parse_query


def as_columns(rows):
    if not rows:
        return (numpy.zeros(0, dtype=numpy.int64),)
    return tuple(
        numpy.asarray(column, dtype=numpy.int64) for column in zip(*rows)
    )


def random_instance(query, n, rows_per_atom, rng):
    return {
        atom.name: [
            tuple(rng.randint(1, n) for _ in range(atom.arity))
            for _ in range(rows_per_atom)
        ]
        for atom in query.atoms
    }


QUERIES = [
    cycle_query(3),
    cycle_query(4),
    line_query(2),
    line_query(4),
    star_query(3),
    parse_query("R(x,y,z), S(z,w)"),
    parse_query("q(x,y) = S(x, x), T(x, y)"),  # repeated variable
    parse_query("q(x,y) = A(x), B(y)"),  # cartesian (no shared vars)
]


class TestAgreesWithReference:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: str(q))
    @pytest.mark.parametrize("seed", range(3))
    def test_random_instances(self, query, seed):
        rng = random.Random(seed)
        instance = random_instance(query, n=12, rows_per_atom=40, rng=rng)
        expected = evaluate_query(query, instance)
        actual = evaluate_query_columnar(
            query,
            {name: as_columns(rows) for name, rows in instance.items()},
        )
        assert actual == expected

    def test_duplicate_rows_are_deduplicated(self):
        query = line_query(2)
        rows = [(1, 2), (1, 2), (2, 3)]
        instance = {"S1": rows, "S2": rows}
        assert evaluate_query_columnar(
            query, {name: as_columns(r) for name, r in instance.items()}
        ) == evaluate_query(query, instance)

    def test_assume_unique_same_answer_set(self):
        query = cycle_query(3)
        rng = random.Random(7)
        instance = random_instance(query, n=10, rows_per_atom=60, rng=rng)
        # Inputs are made duplicate-free so the fast path is valid.
        instance = {
            name: sorted(set(rows)) for name, rows in instance.items()
        }
        fragments = {
            name: as_columns(rows) for name, rows in instance.items()
        }
        fast = evaluate_query_columnar(query, fragments, assume_unique=True)
        assert tuple(sorted(fast)) == evaluate_query(query, instance)
        assert len(fast) == len(set(fast))


class TestEdgeCases:
    def test_missing_relation_is_empty(self):
        query = line_query(2)
        assert evaluate_query_columnar(
            query, {"S1": as_columns([(1, 2)])}
        ) == ()

    def test_empty_relation_is_empty(self):
        query = line_query(2)
        assert evaluate_query_columnar(
            query, {"S1": as_columns([(1, 2)]), "S2": as_columns([])}
        ) == ()

    def test_repeated_variable_filters_rows(self):
        query = parse_query("q(x) = S(x, x)")
        fragments = {"S": as_columns([(1, 1), (1, 2), (3, 3)])}
        assert evaluate_query_columnar(query, fragments) == ((1,), (3,))

    def test_large_domain_multicolumn_key_falls_back(self):
        """Keys too wide to radix-pack go through the factorize path."""
        big = 1 << 22
        query = parse_query("q(x,y,z) = A(x,y,z), B(x,y,z)")
        rows = [(big - i, big - i, big - i) for i in range(1, 20)]
        fragments = {"A": as_columns(rows), "B": as_columns(rows[::2])}
        expected = evaluate_query(
            query, {"A": rows, "B": rows[::2]}
        )
        assert evaluate_query_columnar(query, fragments) == expected
