"""Unit tests for baseline algorithms."""

from __future__ import annotations

import pytest

from repro.algorithms.baselines import (
    run_broadcast_join,
    run_cartesian_grid,
    run_single_attribute_join,
    run_single_server,
)
from repro.algorithms.localjoin import evaluate_query
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import QueryError, parse_query
from repro.data.database import Relation
from repro.data.matching import matching_database


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


class TestBroadcastJoin:
    def test_correct(self, triangle, triangle_db):
        result = run_broadcast_join(triangle, triangle_db, p=4)
        assert result.answers == truth_of(triangle, triangle_db)

    def test_replication_is_p(self, triangle, triangle_db):
        result = run_broadcast_join(triangle, triangle_db, p=4)
        assert result.report.replication_rate == pytest.approx(4.0)


class TestSingleServer:
    def test_correct(self, chain4, chain4_db):
        result = run_single_server(chain4, chain4_db, p=4)
        assert result.answers == truth_of(chain4, chain4_db)

    def test_one_worker_takes_everything(self, chain4, chain4_db):
        result = run_single_server(chain4, chain4_db, p=4)
        stats = result.report.rounds[0]
        assert stats.received_bits[0] == chain4_db.total_bits
        assert all(bits == 0 for bits in stats.received_bits[1:])


class TestSingleAttributeJoin:
    def test_star_query_correct(self, star3):
        database = matching_database(star3, n=50, rng=2)
        result = run_single_attribute_join(star3, database, p=8)
        assert result.answers == truth_of(star3, database)

    def test_two_hop_correct(self, two_hop):
        database = matching_database(two_hop, n=50, rng=3)
        result = run_single_attribute_join(two_hop, database, p=8)
        assert result.answers == truth_of(two_hop, database)

    def test_no_shared_variable_rejected(self):
        query = line_query(3)
        database = matching_database(query, n=10, rng=1)
        with pytest.raises(QueryError, match="variable in every atom"):
            run_single_attribute_join(query, database, p=4)

    def test_cycle_rejected(self):
        query = cycle_query(3)
        database = matching_database(query, n=10, rng=1)
        with pytest.raises(QueryError):
            run_single_attribute_join(query, database, p=4)

    def test_replication_rate_one(self, star3):
        database = matching_database(star3, n=40, rng=4)
        result = run_single_attribute_join(star3, database, p=8)
        assert result.report.replication_rate == pytest.approx(1.0)


class TestCartesianGrid:
    def make_sets(self, n=64):
        left = Relation.from_tuples(
            "A", [(i,) for i in range(1, n + 1)], domain_size=n
        )
        right = Relation.from_tuples(
            "B", [(i,) for i in range(1, n + 1)], domain_size=n
        )
        return left, right

    def test_all_pairs_examined(self):
        left, right = self.make_sets(32)
        result = run_cartesian_grid(left, right, p=16, groups=4)
        assert result.num_pairs == 32 * 32

    def test_replication_equals_g(self):
        left, right = self.make_sets(32)
        for g in (1, 2, 4):
            result = run_cartesian_grid(left, right, p=16, groups=g)
            assert result.replication_rate == pytest.approx(g)

    def test_reducer_size_tradeoff(self):
        left, right = self.make_sets(64)
        sizes = {}
        for g in (1, 2, 4):
            result = run_cartesian_grid(left, right, p=16, groups=g)
            sizes[g] = result.max_reducer_tuples
        assert sizes[1] > sizes[2] > sizes[4]
        assert sizes[1] == 128  # 2n at g = 1

    def test_default_g_is_sqrt_p(self):
        left, right = self.make_sets(16)
        result = run_cartesian_grid(left, right, p=16)
        assert result.replication_rate == pytest.approx(4.0)

    def test_grid_too_large_rejected(self):
        left, right = self.make_sets(8)
        with pytest.raises(ValueError, match="workers"):
            run_cartesian_grid(left, right, p=4, groups=3)
