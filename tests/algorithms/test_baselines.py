"""Unit tests for baseline algorithms."""

from __future__ import annotations

import pytest

from repro.algorithms.baselines import (
    run_broadcast_join,
    run_cartesian_grid,
    run_single_attribute_join,
    run_single_server,
)
from repro.algorithms.localjoin import evaluate_query
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import QueryError, parse_query
from repro.data.database import Relation
from repro.data.matching import matching_database


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


class TestBroadcastJoin:
    def test_correct(self, triangle, triangle_db):
        result = run_broadcast_join(triangle, triangle_db, p=4)
        assert result.answers == truth_of(triangle, triangle_db)

    def test_replication_is_p(self, triangle, triangle_db):
        result = run_broadcast_join(triangle, triangle_db, p=4)
        assert result.report.replication_rate == pytest.approx(4.0)


class TestSingleServer:
    def test_correct(self, chain4, chain4_db):
        result = run_single_server(chain4, chain4_db, p=4)
        assert result.answers == truth_of(chain4, chain4_db)

    def test_one_worker_takes_everything(self, chain4, chain4_db):
        result = run_single_server(chain4, chain4_db, p=4)
        stats = result.report.rounds[0]
        assert stats.received_bits[0] == chain4_db.total_bits
        assert all(bits == 0 for bits in stats.received_bits[1:])


class TestSingleAttributeJoin:
    def test_star_query_correct(self, star3):
        database = matching_database(star3, n=50, rng=2)
        result = run_single_attribute_join(star3, database, p=8)
        assert result.answers == truth_of(star3, database)

    def test_two_hop_correct(self, two_hop):
        database = matching_database(two_hop, n=50, rng=3)
        result = run_single_attribute_join(two_hop, database, p=8)
        assert result.answers == truth_of(two_hop, database)

    def test_no_shared_variable_rejected(self):
        query = line_query(3)
        database = matching_database(query, n=10, rng=1)
        with pytest.raises(QueryError, match="variable in every atom"):
            run_single_attribute_join(query, database, p=4)

    def test_cycle_rejected(self):
        query = cycle_query(3)
        database = matching_database(query, n=10, rng=1)
        with pytest.raises(QueryError):
            run_single_attribute_join(query, database, p=4)

    def test_replication_rate_one(self, star3):
        database = matching_database(star3, n=40, rng=4)
        result = run_single_attribute_join(star3, database, p=8)
        assert result.report.replication_rate == pytest.approx(1.0)


class TestCartesianGrid:
    def make_sets(self, n=64):
        left = Relation.from_tuples(
            "A", [(i,) for i in range(1, n + 1)], domain_size=n
        )
        right = Relation.from_tuples(
            "B", [(i,) for i in range(1, n + 1)], domain_size=n
        )
        return left, right

    def test_all_pairs_examined(self):
        left, right = self.make_sets(32)
        result = run_cartesian_grid(left, right, p=16, groups=4)
        assert result.num_pairs == 32 * 32

    def test_replication_equals_g(self):
        left, right = self.make_sets(32)
        for g in (1, 2, 4):
            result = run_cartesian_grid(left, right, p=16, groups=g)
            assert result.replication_rate == pytest.approx(g)

    def test_reducer_size_tradeoff(self):
        left, right = self.make_sets(64)
        sizes = {}
        for g in (1, 2, 4):
            result = run_cartesian_grid(left, right, p=16, groups=g)
            sizes[g] = result.max_reducer_tuples
        assert sizes[1] > sizes[2] > sizes[4]
        assert sizes[1] == 128  # 2n at g = 1

    def test_default_g_is_sqrt_p(self):
        left, right = self.make_sets(16)
        result = run_cartesian_grid(left, right, p=16)
        assert result.replication_rate == pytest.approx(4.0)

    def test_grid_too_large_rejected(self):
        left, right = self.make_sets(8)
        with pytest.raises(ValueError, match="workers"):
            run_cartesian_grid(left, right, p=4, groups=3)


class TestBackendParity:
    """Every baseline honours ``backend=`` with identical results."""

    @staticmethod
    def assert_reports_match(pure, vectorized):
        assert vectorized.answers == pure.answers
        for round_pure, round_vec in zip(
            pure.report.rounds, vectorized.report.rounds
        ):
            assert round_vec.received_bits == round_pure.received_bits
            assert round_vec.received_tuples == round_pure.received_tuples

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        from repro.backend import numpy_available

        if not numpy_available():
            pytest.skip("numpy backend unavailable")

    def test_broadcast_parity(self, chain4, chain4_db):
        self.assert_reports_match(
            run_broadcast_join(chain4, chain4_db, p=4, backend="pure"),
            run_broadcast_join(chain4, chain4_db, p=4, backend="numpy"),
        )

    def test_single_server_parity(self, chain4, chain4_db):
        self.assert_reports_match(
            run_single_server(chain4, chain4_db, p=4, backend="pure"),
            run_single_server(chain4, chain4_db, p=4, backend="numpy"),
        )

    def test_single_attribute_parity(self, star3):
        database = matching_database(star3, n=40, rng=3)
        self.assert_reports_match(
            run_single_attribute_join(star3, database, p=8, backend="pure"),
            run_single_attribute_join(star3, database, p=8, backend="numpy"),
        )

    def test_single_attribute_ships_every_tuple(self):
        """The classical hash join routes every tuple by its hash --
        even rows a repeated-variable atom can never join."""
        query = parse_query("q(x,y) = S(x, x), T(x, y)")
        from repro.data.database import Database

        database = Database.from_relations(
            [
                Relation.from_tuples(
                    "S", [(1, 1), (1, 2), (3, 3)], domain_size=4
                ),
                Relation.from_tuples("T", [(1, 2), (3, 4)], domain_size=4),
            ]
        )
        pure = run_single_attribute_join(query, database, p=4, backend="pure")
        vectorized = run_single_attribute_join(
            query, database, p=4, backend="numpy"
        )
        self.assert_reports_match(pure, vectorized)
        # All 5 tuples shipped; replication rate exactly 1.
        assert sum(pure.report.rounds[0].received_tuples) == 5

    def test_cartesian_parity(self):
        left = Relation.from_tuples(
            "A", [(i,) for i in range(1, 65)], domain_size=64
        )
        right = Relation.from_tuples(
            "B", [(i,) for i in range(1, 65)], domain_size=64
        )
        pure = run_cartesian_grid(left, right, p=16, backend="pure")
        vectorized = run_cartesian_grid(left, right, p=16, backend="numpy")
        assert pure.num_pairs == vectorized.num_pairs == 64 * 64
        assert pure.max_reducer_tuples == vectorized.max_reducer_tuples
        assert pure.replication_rate == pytest.approx(
            vectorized.replication_rate
        )
        assert (
            pure.report.rounds[0].received_bits
            == vectorized.report.rounds[0].received_bits
        )
