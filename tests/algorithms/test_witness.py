"""Unit tests for the JOIN-WITNESS experiment (Proposition 3.12)."""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.witness import (
    WITNESS_CHAIN,
    run_witness_experiment,
)
from repro.core.covers import covering_number


class TestChainQuery:
    def test_chain_has_tau_two(self):
        assert covering_number(WITNESS_CHAIN) == 2

    def test_chain_variables(self):
        assert WITNESS_CHAIN.head == ("w", "x", "y", "z")


class TestExperiment:
    def test_recovered_witnesses_are_true(self):
        for seed in range(6):
            result = run_witness_experiment(
                n=81, p=4, eps=Fraction(0), seed=seed
            )
            assert set(result.witnesses) <= set(result.true_witnesses)
            if result.found:
                assert result.witnesses

    def test_found_flag_consistent(self):
        result = run_witness_experiment(n=64, p=4, eps=Fraction(0), seed=3)
        assert result.found == bool(result.witnesses)

    def test_chain_fraction_in_unit_interval(self):
        result = run_witness_experiment(n=64, p=8, eps=Fraction(0), seed=1)
        assert 0.0 <= result.chain_fraction <= 1.0

    def test_full_budget_finds_all_witnesses(self):
        """At eps = 1/2 (the chain's space exponent) nothing is lost.

        p = 9 makes the virtual grid (3 x 3) coincide exactly with the
        servers; with p not of that form, integer share rounding can
        leave a sliver of grid points unassigned.
        """
        for seed in range(8):
            result = run_witness_experiment(
                n=49, p=9, eps=Fraction(1, 2), seed=seed
            )
            assert set(result.witnesses) == set(result.true_witnesses)

    def test_hit_rate_degrades_with_p(self):
        """Aggregate shape check for the eps < 1/2 regime: across
        seeds, the chain fraction at p=16 is below that at p=2."""
        import statistics

        def mean_fraction(p):
            return statistics.mean(
                run_witness_experiment(
                    n=100, p=p, eps=Fraction(0), seed=seed
                ).chain_fraction
                for seed in range(6)
            )

        assert mean_fraction(16) < mean_fraction(2)
