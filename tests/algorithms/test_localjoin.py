"""Unit tests for the local CQ evaluator, incl. brute-force cross-check."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.algorithms.localjoin import count_answers, evaluate_query
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import parse_query


def brute_force(query, relations):
    """Reference implementation: enumerate all variable assignments."""
    domain = set()
    for rows in relations.values():
        for row in rows:
            domain.update(row)
    answers = set()
    variables = query.head
    for assignment in itertools.product(sorted(domain), repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        if all(
            tuple(binding[v] for v in atom.variables)
            in {tuple(r) for r in relations.get(atom.name, ())}
            for atom in query.atoms
        ):
            answers.add(assignment)
    return tuple(sorted(answers))


class TestBasicJoins:
    def test_two_hop(self, two_hop):
        relations = {
            "S1": [(1, 2), (2, 3)],
            "S2": [(2, 5), (3, 6)],
        }
        assert evaluate_query(two_hop, relations) == (
            (1, 2, 5),
            (2, 3, 6),
        )

    def test_triangle(self, triangle):
        relations = {
            "S1": [(1, 2), (1, 3)],
            "S2": [(2, 3)],
            "S3": [(3, 1)],
        }
        assert evaluate_query(triangle, relations) == ((1, 2, 3),)

    def test_empty_relation_gives_no_answers(self, triangle):
        relations = {"S1": [(1, 2)], "S2": [], "S3": [(3, 1)]}
        assert evaluate_query(triangle, relations) == ()

    def test_missing_relation_treated_as_empty(self, triangle):
        assert evaluate_query(triangle, {"S1": [(1, 2)]}) == ()

    def test_head_order_respected(self):
        query = parse_query("q(z,x) = S(x,z)")
        assert evaluate_query(query, {"S": [(1, 2)]}) == ((2, 1),)

    def test_count_answers(self, two_hop):
        relations = {"S1": [(1, 2)], "S2": [(2, 3), (2, 4)]}
        assert count_answers(two_hop, relations) == 2


class TestRepeatedVariables:
    def test_repeated_variable_acts_as_selection(self):
        query = parse_query("q(x,y) = S(x,x,y)")
        relations = {"S": [(1, 1, 5), (1, 2, 6), (3, 3, 7)]}
        assert evaluate_query(query, relations) == ((1, 5), (3, 7))

    def test_contracted_query_evaluates(self):
        from repro.core.characteristic import contract

        contracted = contract(cycle_query(3), ["S1"])
        # S2(x2,x3), S3(x3,x1) with x1 == x2 (merged): answers are
        # pairs forming a 2-cycle through the merged variable.
        relations = {
            "S2": [(1, 2), (2, 1)],
            "S3": [(2, 1), (1, 2)],
        }
        answers = evaluate_query(contracted, relations)
        assert answers  # (1,2) -> S2(1,2), S3(2,1): merged var 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "query",
        [
            line_query(2),
            line_query(3),
            cycle_query(3),
            star_query(2),
            parse_query("R(x,y), S(y,z), T(y,w)"),
        ],
        ids=["L2", "L3", "C3", "T2", "branch"],
    )
    def test_random_small_instances(self, query):
        rng = random.Random(17)
        for trial in range(5):
            relations = {
                atom.name: [
                    tuple(rng.randint(1, 4) for _ in range(atom.arity))
                    for _ in range(6)
                ]
                for atom in query.atoms
            }
            assert evaluate_query(query, relations) == brute_force(
                query, relations
            )

    def test_ternary_atoms(self):
        query = parse_query("R(x,y,z), S(z,w)")
        rng = random.Random(23)
        relations = {
            "R": [
                (rng.randint(1, 3), rng.randint(1, 3), rng.randint(1, 3))
                for _ in range(8)
            ],
            "S": [
                (rng.randint(1, 3), rng.randint(1, 3)) for _ in range(8)
            ],
        }
        assert evaluate_query(query, relations) == brute_force(
            query, relations
        )


class TestMatchingSemantics:
    def test_line_query_on_matchings_has_n_answers(self, chain4, chain4_db):
        answers = evaluate_query(
            chain4,
            {name: chain4_db[name].tuples for name in chain4_db.relations},
        )
        assert len(answers) == chain4_db.domain_size

    def test_answers_are_keys(self, chain4, chain4_db):
        """On matching inputs every attribute of the output is a key."""
        answers = evaluate_query(
            chain4,
            {name: chain4_db[name].tuples for name in chain4_db.relations},
        )
        for position in range(len(chain4.head)):
            column = [row[position] for row in answers]
            assert len(set(column)) == len(column)
