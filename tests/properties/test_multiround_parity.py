"""Pure vs numpy engine parity for the multi-round plan executor.

Like the HyperCube parity suite: for any plan, database, seed and
server count the vectorized engine must produce exactly the same
answers, per-round received bits/tuples, view sizes, per-server
answer counts and capacity failures as the pure reference.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.backend import numpy_available

if not numpy_available():
    pytest.skip("numpy backend unavailable", allow_module_level=True)

from repro.algorithms.multiround import run_plan
from repro.core.families import (
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.plans import build_plan
from repro.data.database import Database, Relation
from repro.data.matching import matching_database
from repro.mpc.simulator import CapacityExceeded

PLANS = [
    (line_query(4), Fraction(0)),
    (line_query(8), Fraction(0)),
    (line_query(8), Fraction(1, 2)),
    (line_query(16), Fraction(1, 2)),
    (cycle_query(5), Fraction(0)),
    (cycle_query(6), Fraction(0)),
    (spider_query(3), Fraction(0)),
    (star_query(4), Fraction(0)),
]


def run_both(query, eps, database, p, seed, **kwargs):
    plan = build_plan(query, eps)
    pure = run_plan(
        plan, database, p=p, seed=seed, backend="pure", **kwargs
    )
    vectorized = run_plan(
        plan, database, p=p, seed=seed, backend="numpy", **kwargs
    )
    return pure, vectorized


def assert_parity(pure, vectorized):
    assert vectorized.answers == pure.answers
    assert vectorized.rounds_used == pure.rounds_used
    assert vectorized.view_sizes == pure.view_sizes
    assert vectorized.per_server_answers == pure.per_server_answers
    assert len(vectorized.report.rounds) == len(pure.report.rounds)
    for round_pure, round_vec in zip(
        pure.report.rounds, vectorized.report.rounds
    ):
        assert round_vec.received_bits == round_pure.received_bits
        assert round_vec.received_tuples == round_pure.received_tuples
        assert round_vec.capacity_bits == round_pure.capacity_bits


def random_database(query, n, rows_per_atom, rng):
    relations = [
        Relation.from_tuples(
            atom.name,
            [
                tuple(rng.randint(1, n) for _ in range(atom.arity))
                for _ in range(rows_per_atom)
            ],
            domain_size=n,
            arity=atom.arity,
        )
        for atom in query.atoms
    ]
    return Database.from_relations(relations)


class TestMatchingDatabases:
    @pytest.mark.parametrize(
        "query,eps",
        PLANS,
        ids=lambda value: str(value)
        if isinstance(value, Fraction)
        else value.name,
    )
    def test_parity_on_matchings(self, query, eps):
        database = matching_database(query, n=40, rng=11)
        pure, vectorized = run_both(query, eps, database, p=8, seed=4)
        assert_parity(pure, vectorized)

    @pytest.mark.parametrize("p", [1, 2, 7, 16])
    def test_parity_for_any_p(self, p):
        query = line_query(6)
        database = matching_database(query, n=30, rng=9)
        pure, vectorized = run_both(
            query, Fraction(0), database, p=p, seed=1
        )
        assert_parity(pure, vectorized)

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_for_any_seed(self, seed):
        query = cycle_query(5)
        database = matching_database(query, n=24, rng=3)
        pure, vectorized = run_both(
            query, Fraction(0), database, p=4, seed=seed
        )
        assert_parity(pure, vectorized)


class TestRandomizedDatabases:
    @pytest.mark.parametrize("trial", range(6))
    def test_parity_on_random_inputs(self, trial):
        rng = random.Random(5000 + 131 * trial)
        query, eps = PLANS[trial % len(PLANS)]
        database = random_database(
            query, n=18, rows_per_atom=rng.randint(1, 60), rng=rng
        )
        p = rng.choice([2, 5, 8, 16])
        pure, vectorized = run_both(
            query, eps, database, p=p, seed=trial
        )
        assert_parity(pure, vectorized)

    def test_parity_with_empty_intermediate_views(self):
        """Disjoint relations: every view is empty after round 1."""
        query = line_query(4)
        relations = [
            Relation.from_tuples(
                atom.name,
                [(2 * index + 1, 2 * index + 2)],
                domain_size=40,
            )
            for index, atom in enumerate(query.atoms)
        ]
        database = Database.from_relations(relations)
        pure, vectorized = run_both(
            query, Fraction(0), database, p=4, seed=0
        )
        assert_parity(pure, vectorized)
        assert pure.answers == ()


class TestCapacityParity:
    def test_capacity_exceeded_fires_identically(self):
        query = line_query(8)
        database = matching_database(query, n=60, rng=2)
        plan = build_plan(query, Fraction(0))
        failures = {}
        for backend in ("pure", "numpy"):
            with pytest.raises(CapacityExceeded) as info:
                run_plan(
                    plan,
                    database,
                    p=8,
                    seed=3,
                    backend=backend,
                    enforce_capacity=True,
                    capacity_c=0.01,
                )
            failures[backend] = info.value
        pure, vectorized = failures["pure"], failures["numpy"]
        assert vectorized.worker == pure.worker
        assert vectorized.received_bits == pure.received_bits
        assert vectorized.capacity_bits == pure.capacity_bits
        assert vectorized.round_index == pure.round_index

    def test_generous_capacity_passes_both(self):
        query = line_query(8)
        database = matching_database(query, n=40, rng=5)
        pure, vectorized = run_both(
            query,
            Fraction(1, 2),
            database,
            p=8,
            seed=0,
            enforce_capacity=True,
            capacity_c=8.0,
        )
        assert_parity(pure, vectorized)
