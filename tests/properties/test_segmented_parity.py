"""Segmented fleet-wide local evaluation vs the per-worker reference.

The tentpole invariant of the mailbox-pool refactor: for every
algorithm, evaluating all workers in one segmented pass over the
delivery pools produces *bit-identical* results to the per-worker
loop -- merged answers, per-server counts, materialised views and
capacity failures -- across backends.  These tests randomize queries,
databases and grid sizes to pin that.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.multiround import run_plan
from repro.algorithms.skewaware import run_hypercube_skew_aware
from repro.backend import numpy_available, require_numpy
from repro.core.families import cycle_query, line_query, star_query
from repro.core.plans import build_plan
from repro.core.query import parse_query
from repro.data.generators import (
    matching_database_columnar,
    skewed_database,
    skewed_database_columnar,
)
from repro.data.matching import matching_database

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

QUERIES = [
    cycle_query(3),
    line_query(3),
    line_query(5),
    star_query(2),
    parse_query("q(x,y,z) = S1(x,y), S2(y,z)"),
]


def _route_hc(query, database, p, seed):
    """One numpy HC round; returns (simulator, workers)."""
    from fractions import Fraction

    from repro.core.covers import fractional_vertex_cover
    from repro.core.shares import (
        allocate_integer_shares,
        share_exponents,
    )
    from repro.data.columnar import columnar_database
    from repro.engine import GridSpec, HashRoute, RoundEngine
    from repro.mpc.model import MPCConfig
    from repro.mpc.routing import HashFamily
    from repro.mpc.simulator import MPCSimulator

    cover = fractional_vertex_cover(query)
    allocation = allocate_integer_shares(
        share_exponents(query, cover), p
    )
    grid = GridSpec.from_shares(
        query.variables, allocation.shares, HashFamily(seed)
    )
    config = MPCConfig(
        p=p, eps=Fraction(1, 2), c=4.0, backend="numpy"
    )
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator)
    steps = [
        HashRoute(relation=atom.name, atom=atom, grid=grid)
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, "numpy"))
    return simulator, list(range(allocation.used_servers))


class TestSegmentedVsPerWorker:
    """The two numpy local-eval paths agree on every query/input."""

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matching_inputs(self, query, seed):
        from repro.engine import (
            fleet_answer_table,
            merged_answer_table_per_worker,
        )

        numpy = require_numpy()
        rng = random.Random(seed)
        n = rng.choice([40, 97, 150])
        p = rng.choice([4, 16, 33])
        database = matching_database(query, n=n, rng=seed)
        simulator, workers = _route_hc(query, database, p, seed)
        segmented = fleet_answer_table(query, simulator, workers)
        assert segmented is not None  # pools available: path exercised
        per_worker = merged_answer_table_per_worker(
            query, simulator, workers
        )
        assert numpy.array_equal(segmented[0], per_worker[0])
        assert segmented[1] == per_worker[1]

    @pytest.mark.parametrize("seed", [0, 3])
    def test_worker_subsets(self, seed):
        """Pool slicing agrees for prefixes and arbitrary subsets."""
        from repro.engine import (
            fleet_answer_table,
            merged_answer_table_per_worker,
        )

        numpy = require_numpy()
        query = cycle_query(3)
        database = matching_database(query, n=80, rng=seed)
        simulator, workers = _route_hc(query, database, 16, seed)
        for subset in (
            [0],
            list(range(5)),
            [2, 7, 11],
            [11, 2, 7],  # non-ascending iteration order
            [],
        ):
            segmented = fleet_answer_table(
                query, simulator, list(subset)
            )
            per_worker = merged_answer_table_per_worker(
                query, simulator, list(subset)
            )
            assert segmented is not None
            assert numpy.array_equal(segmented[0], per_worker[0]), subset
            assert segmented[1] == per_worker[1], subset


class TestBackendParityThroughSegmented:
    """End-to-end: numpy (segmented) vs pure answers and counts."""

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_hypercube(self, query):
        database = matching_database(query, n=60, rng=5)
        pure = run_hypercube(query, database, p=16, seed=1, backend="pure")
        vectorized = run_hypercube(
            query, database, p=16, seed=1, backend="numpy"
        )
        assert pure.answers == vectorized.answers
        assert pure.per_server_answers == vectorized.per_server_answers
        assert (
            pure.report.rounds[0].received_bits
            == vectorized.report.rounds[0].received_bits
        )

    def test_skew_aware(self):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = skewed_database(query, n=120, rng=2, heavy_fraction=0.4)
        pure = run_hypercube_skew_aware(
            query, database, p=16, seed=3, backend="pure"
        )
        vectorized = run_hypercube_skew_aware(
            query, database, p=16, seed=3, backend="numpy"
        )
        assert pure.answers == vectorized.answers
        assert pure.per_server_answers == vectorized.per_server_answers
        assert pure.heavy_hitters == vectorized.heavy_hitters

    def test_multiround_views(self):
        """Views and per-server counts agree round by round."""
        from fractions import Fraction

        query = line_query(4)
        plan = build_plan(query, Fraction(0))
        database = matching_database(query, n=50, rng=7)
        pure = run_plan(plan, database, p=8, seed=2, backend="pure")
        vectorized = run_plan(plan, database, p=8, seed=2, backend="numpy")
        assert pure.answers == vectorized.answers
        assert pure.view_sizes == vectorized.view_sizes
        assert pure.per_server_answers == vectorized.per_server_answers

    def test_capacity_exceeded_parity(self):
        """Both backends blow the same budget at the same worker."""
        from repro.mpc.simulator import CapacityExceeded

        query = cycle_query(3)
        database = matching_database(query, n=100, rng=0)
        failures = {}
        for backend in ("pure", "numpy"):
            with pytest.raises(CapacityExceeded) as info:
                run_hypercube(
                    query,
                    database,
                    p=16,
                    seed=0,
                    backend=backend,
                    capacity_c=0.01,
                    enforce_capacity=True,
                )
            failures[backend] = (
                info.value.worker,
                info.value.received_bits,
                info.value.round_index,
            )
        assert failures["pure"] == failures["numpy"]


class TestColumnarGenerators:
    """The large-n generators agree with the executors end to end."""

    def test_matching_columnar_structure(self):
        numpy = require_numpy()
        query = cycle_query(3)
        database = matching_database_columnar(query, n=200, seed=4)
        for relation in database:
            assert len(relation) == 200
            # Every column is a permutation of 1..n.
            for column in relation.columns:
                assert numpy.array_equal(
                    numpy.sort(column), numpy.arange(1, 201)
                )
            # Lexicographically sorted (first column ascending).
            assert numpy.array_equal(
                relation.columns[0], numpy.arange(1, 201)
            )

    def test_matching_columnar_runs_hypercube(self):
        query = line_query(3)
        database = matching_database_columnar(query, n=150, seed=1)
        result = run_hypercube(
            query, database, p=16, seed=0, backend="numpy"
        )
        # L_k over matchings chains end to end: n answers.
        assert len(result.answers) == 150

    def test_skewed_columnar_chunking_invariant(self):
        """Chunk size never changes the generated instance."""
        numpy = require_numpy()
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        small = skewed_database_columnar(
            query, n=500, seed=9, heavy_fraction=0.3, chunk_rows=64
        )
        large = skewed_database_columnar(
            query, n=500, seed=9, heavy_fraction=0.3, chunk_rows=1 << 18
        )
        for name in ("S1", "S2"):
            for a, b in zip(small[name].columns, large[name].columns):
                assert numpy.array_equal(a, b)

    def test_skewed_columnar_heavy_value_present(self):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = skewed_database_columnar(
            query, n=400, seed=0, heavy_fraction=0.5
        )
        aware = run_hypercube_skew_aware(
            query, database, p=16, seed=0, backend="numpy"
        )
        assert any(1 in values for values in aware.heavy_hitters.values())
