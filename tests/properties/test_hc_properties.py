"""Property-based end-to-end tests: HC and plans vs the exact join."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.multiround import run_plan
from repro.core.families import cycle_query, line_query, star_query
from repro.core.plans import build_plan
from repro.data.matching import matching_database


def truth_of(query, database):
    return evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )


QUERY_STRATEGY = st.one_of(
    st.integers(min_value=1, max_value=5).map(line_query),
    st.integers(min_value=3, max_value=5).map(cycle_query),
    st.integers(min_value=1, max_value=4).map(star_query),
)


class TestHyperCubeNeverWrong:
    @given(
        query=QUERY_STRATEGY,
        p=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=4, max_value=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_hc_equals_truth(self, query, p, seed, n):
        database = matching_database(query, n=n, rng=seed)
        result = run_hypercube(query, database, p=p, seed=seed)
        assert result.answers == truth_of(query, database)

    @given(
        query=QUERY_STRATEGY,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_used_servers_never_exceed_p(self, query, seed):
        database = matching_database(query, n=10, rng=seed)
        result = run_hypercube(query, database, p=13, seed=seed)
        assert result.allocation.used_servers <= 13


class TestPlansNeverWrong:
    @given(
        k=st.integers(min_value=2, max_value=9),
        eps=st.sampled_from([Fraction(0), Fraction(1, 2)]),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    @settings(max_examples=15, deadline=None)
    def test_line_plans(self, k, eps, seed):
        query = line_query(k)
        database = matching_database(query, n=12, rng=seed)
        plan = build_plan(query, eps)
        result = run_plan(plan, database, p=6, seed=seed)
        assert result.answers == truth_of(query, database)
        assert result.rounds_used == plan.depth

    @given(
        k=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    @settings(max_examples=10, deadline=None)
    def test_cycle_plans(self, k, seed):
        query = cycle_query(k)
        database = matching_database(query, n=10, rng=seed)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=4, seed=seed)
        assert result.answers == truth_of(query, database)
