"""Property tests: communication budgets are actually respected."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.multiround import run_plan
from repro.core.families import cycle_query, line_query
from repro.core.plans import build_plan
from repro.data.matching import matching_database


class TestHCCapacity:
    @given(
        p=st.sampled_from([8, 16, 27, 64]),
        seed=st.integers(min_value=0, max_value=2**12),
    )
    @settings(max_examples=15, deadline=None)
    def test_hc_load_within_constant_of_capacity(self, p, seed):
        """At its own space exponent, HC's received bits stay within a
        small constant of c*N/p^{1-eps} at every server (Prop 3.2's
        high-probability event, checked on every draw)."""
        query = cycle_query(3)
        database = matching_database(query, n=120, rng=seed)
        result = run_hypercube(
            query, database, p=p, seed=seed, capacity_c=6.0
        )
        stats = result.report.rounds[0]
        assert stats.max_received_bits <= stats.capacity_bits

    @given(seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=10, deadline=None)
    def test_total_bits_match_replication_budget(self, seed):
        """Total traffic = N * replication; replication <= 2 p^eps."""
        query = cycle_query(3)  # eps = 1/3
        database = matching_database(query, n=100, rng=seed)
        result = run_hypercube(query, database, p=27, seed=seed)
        assert result.report.replication_rate <= 2 * 27 ** (1 / 3)


class TestPlanCapacity:
    @given(
        k=st.sampled_from([4, 8]),
        eps=st.sampled_from([Fraction(0), Fraction(1, 2)]),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_round_within_budget(self, k, eps, seed):
        """Each round of a plan execution respects c*N/p^{1-eps} bits
        per worker (the Proposition 4.1 guarantee on matchings)."""
        query = line_query(k)
        database = matching_database(query, n=80, rng=seed)
        plan = build_plan(query, eps)
        result = run_plan(
            plan, database, p=8, seed=seed, capacity_c=8.0
        )
        for stats in result.report.rounds:
            assert stats.max_received_bits <= stats.capacity_bits

    @given(seed=st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=8, deadline=None)
    def test_intermediate_views_stay_matching_sized(self, seed):
        """On matchings, every intermediate view of a chain plan has
        exactly n tuples -- no intermediate blow-up (the reason bushy
        chain plans are safe at eps = 0)."""
        query = line_query(8)
        database = matching_database(query, n=40, rng=seed)
        plan = build_plan(query, Fraction(0))
        result = run_plan(plan, database, p=4, seed=seed)
        assert all(size == 40 for size in result.view_sizes.values())
