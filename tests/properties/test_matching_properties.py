"""Property-based tests for matching-database invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.algorithms.localjoin import evaluate_query
from repro.core.families import line_query, star_query
from repro.data.matching import matching_database, random_matching


class TestMatchingInvariants:
    @given(
        arity=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_random_matching_is_a_matching(self, arity, n, seed):
        relation = random_matching("S", arity, n, random.Random(seed))
        assert relation.is_matching()
        assert len(relation) == n

    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_columns_are_keys(self, n, seed):
        relation = random_matching("S", 3, n, random.Random(seed))
        for column in range(3):
            values = [row[column] for row in relation.tuples]
            assert len(set(values)) == n

    @given(
        k=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_line_query_output_is_matching_shaped(self, k, n, seed):
        """On matchings, L_k has exactly n answers and every output
        attribute is a key (Section 2.5: the answer to a connected
        query on a matching database has every attribute a key)."""
        query = line_query(k)
        database = matching_database(query, n=n, rng=seed)
        answers = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        assert len(answers) == n
        for position in range(len(query.head)):
            column = {row[position] for row in answers}
            assert len(column) == n

    @given(
        k=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_star_query_has_n_answers(self, k, n, seed):
        query = star_query(k)
        database = matching_database(query, n=n, rng=seed)
        answers = evaluate_query(
            query,
            {name: database[name].tuples for name in database.relations},
        )
        assert len(answers) == n

    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_answers_bounded_by_n_for_connected_queries(self, n, seed):
        """|q(I)| <= n for any connected q on a matching database."""
        from repro.core.families import cycle_query

        for query in (cycle_query(3), line_query(3)):
            database = matching_database(query, n=n, rng=seed)
            answers = evaluate_query(
                query,
                {name: database[name].tuples for name in database.relations},
            )
            assert len(answers) <= n
