"""Pure vs numpy engine parity for the HyperCube executor.

The ``numpy`` backend is a pure performance play: for any query,
database, seed and server count it must produce *exactly* the same
answers, per-round received bits/tuples, per-server answer counts and
capacity failures as the ``pure`` reference implementation.  These
tests drive both engines over randomized inputs and assert equality
of everything observable.
"""

from __future__ import annotations

import random

import pytest

from repro.backend import numpy_available

if not numpy_available():
    pytest.skip("numpy backend unavailable", allow_module_level=True)

import numpy

from repro.algorithms.hypercube import run_hypercube
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)
from repro.core.query import parse_query
from repro.data.database import Database, Relation
from repro.data.matching import matching_database
from repro.mpc.simulator import CapacityExceeded

QUERIES = [
    cycle_query(3),
    cycle_query(4),
    line_query(2),
    line_query(4),
    star_query(3),
    spider_query(2),
    binomial_query(3, 2),
    parse_query("R(x,y,z), S(z,w)"),
]


def run_both(query, database, p, seed, **kwargs):
    pure = run_hypercube(
        query, database, p=p, seed=seed, backend="pure", **kwargs
    )
    vectorized = run_hypercube(
        query, database, p=p, seed=seed, backend="numpy", **kwargs
    )
    return pure, vectorized


def assert_parity(pure, vectorized):
    assert vectorized.answers == pure.answers
    assert vectorized.per_server_answers == pure.per_server_answers
    assert vectorized.allocation == pure.allocation
    assert len(vectorized.report.rounds) == len(pure.report.rounds)
    for round_pure, round_vec in zip(
        pure.report.rounds, vectorized.report.rounds
    ):
        assert round_vec.received_bits == round_pure.received_bits
        assert round_vec.received_tuples == round_pure.received_tuples
        assert round_vec.capacity_bits == round_pure.capacity_bits


def random_database(query, n, rows_per_atom, rng):
    relations = [
        Relation.from_tuples(
            atom.name,
            [
                tuple(rng.randint(1, n) for _ in range(atom.arity))
                for _ in range(rows_per_atom)
            ],
            domain_size=n,
            arity=atom.arity,
        )
        for atom in query.atoms
    ]
    return Database.from_relations(relations)


class TestMatchingDatabases:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_parity_on_matchings(self, query):
        database = matching_database(query, n=60, rng=11)
        pure, vectorized = run_both(query, database, p=16, seed=4)
        assert_parity(pure, vectorized)

    @pytest.mark.parametrize("p", [1, 2, 5, 16, 30, 64])
    def test_parity_for_any_p(self, p):
        query = cycle_query(3)
        database = matching_database(query, n=40, rng=7)
        pure, vectorized = run_both(query, database, p=p, seed=1)
        assert_parity(pure, vectorized)

    @pytest.mark.parametrize("seed", range(5))
    def test_parity_for_any_seed(self, seed):
        query = line_query(4)
        database = matching_database(query, n=40, rng=13)
        pure, vectorized = run_both(query, database, p=9, seed=seed)
        assert_parity(pure, vectorized)


class TestRandomizedDatabases:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    @pytest.mark.parametrize("trial", range(3))
    def test_parity_on_random_skewed_inputs(self, query, trial):
        rng = random.Random(1000 * trial + 17)
        database = random_database(
            query, n=25, rows_per_atom=rng.randint(1, 80), rng=rng
        )
        p = rng.choice([2, 7, 16, 27])
        pure, vectorized = run_both(query, database, p=p, seed=trial)
        assert_parity(pure, vectorized)

    def test_parity_with_repeated_variable_atoms(self):
        query = parse_query("q(x,y) = S(x, x), T(x, y)")
        rng = random.Random(3)
        database = random_database(query, n=15, rows_per_atom=50, rng=rng)
        pure, vectorized = run_both(query, database, p=8, seed=0)
        assert_parity(pure, vectorized)
        assert pure.answers  # the instance actually exercises the join


class TestCapacityParity:
    def test_capacity_exceeded_fires_identically(self):
        """A too-tight budget must abort both engines at the same
        worker with the same byte count."""
        query = cycle_query(3)
        database = matching_database(query, n=80, rng=2)
        failures = {}
        for backend in ("pure", "numpy"):
            with pytest.raises(CapacityExceeded) as info:
                run_hypercube(
                    query,
                    database,
                    p=16,
                    seed=3,
                    backend=backend,
                    enforce_capacity=True,
                    capacity_c=0.01,
                )
            failures[backend] = info.value
        pure, vectorized = failures["pure"], failures["numpy"]
        assert vectorized.worker == pure.worker
        assert vectorized.received_bits == pure.received_bits
        assert vectorized.capacity_bits == pure.capacity_bits
        assert vectorized.round_index == pure.round_index

    def test_generous_capacity_passes_both(self):
        query = cycle_query(3)
        database = matching_database(query, n=40, rng=5)
        pure, vectorized = run_both(
            query,
            database,
            p=8,
            seed=0,
            enforce_capacity=True,
            capacity_c=6.0,
        )
        assert_parity(pure, vectorized)
