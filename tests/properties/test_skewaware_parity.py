"""Pure vs numpy engine parity for skew-aware HyperCube.

The vectorized heavy-hitter detection (unique/counts) and the
signature-grouped heavy/light partition routing must be bit-identical
to the per-tuple reference: same heavy hitters, same answers, same
per-round received bits/tuples, same per-server answer counts, same
capacity failures -- on matchings, adversarial funnels and randomized
skewed inputs alike.
"""

from __future__ import annotations

import random

import pytest

from repro.backend import numpy_available

if not numpy_available():
    pytest.skip("numpy backend unavailable", allow_module_level=True)

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.skewaware import (
    detect_heavy_hitters,
    run_hypercube_skew_aware,
)
from repro.core.families import cycle_query, line_query, star_query
from repro.core.query import parse_query
from repro.data.database import Database, Relation
from repro.data.generators import skewed_database
from repro.data.matching import matching_database
from repro.mpc.simulator import CapacityExceeded

QUERIES = [
    parse_query("q(x,y,z) = S1(x,y), S2(y,z)"),
    cycle_query(3),
    line_query(4),
    star_query(3),
    parse_query("R(x,y,z), S(z,w)"),
]


def funnel_database(n=128):
    return Database.from_relations(
        [
            Relation.from_tuples(
                "S1", [(i, 1) for i in range(1, n + 1)], n
            ),
            Relation.from_tuples(
                "S2", [(1, i) for i in range(1, n + 1)], n
            ),
        ]
    )


def run_both(query, database, p, seed, **kwargs):
    pure = run_hypercube_skew_aware(
        query, database, p=p, seed=seed, backend="pure", **kwargs
    )
    vectorized = run_hypercube_skew_aware(
        query, database, p=p, seed=seed, backend="numpy", **kwargs
    )
    return pure, vectorized


def assert_parity(pure, vectorized):
    assert vectorized.answers == pure.answers
    assert vectorized.heavy_hitters == pure.heavy_hitters
    assert vectorized.allocation == pure.allocation
    assert vectorized.per_server_answers == pure.per_server_answers
    assert len(vectorized.report.rounds) == len(pure.report.rounds)
    for round_pure, round_vec in zip(
        pure.report.rounds, vectorized.report.rounds
    ):
        assert round_vec.received_bits == round_pure.received_bits
        assert round_vec.received_tuples == round_pure.received_tuples


class TestDetectionParity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_heavy_hitters_identical(self, query):
        database = skewed_database(query, n=50, rng=3, heavy_fraction=0.4)
        shares = {v: 4 for v in query.variables}
        pure = detect_heavy_hitters(
            query, database, shares, backend="pure"
        )
        vectorized = detect_heavy_hitters(
            query, database, shares, backend="numpy"
        )
        assert pure == vectorized
        assert any(values for values in pure.values())

    def test_no_heavy_hitters_on_matchings(self):
        query = cycle_query(3)
        database = matching_database(query, n=60, rng=1)
        shares = {v: 4 for v in query.variables}
        assert detect_heavy_hitters(
            query, database, shares, backend="numpy"
        ) == detect_heavy_hitters(query, database, shares, backend="pure")


class TestFunnel:
    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_parity_on_funnel(self, p):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = funnel_database(128)
        pure, vectorized = run_both(query, database, p=p, seed=3)
        assert_parity(pure, vectorized)
        assert pure.heavy_hitters["y"]
        assert len(pure.answers) == 128 * 128

    def test_parity_beats_plain_hc(self):
        """Both backends agree AND both beat plain HC's max load."""
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = funnel_database(128)
        plain = run_hypercube(query, database, p=16, seed=5)
        pure, vectorized = run_both(query, database, p=16, seed=5)
        assert_parity(pure, vectorized)
        assert pure.report.max_load_tuples < plain.report.max_load_tuples


class TestRandomizedDatabases:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    @pytest.mark.parametrize("trial", range(3))
    def test_parity_on_random_skewed_inputs(self, query, trial):
        rng = random.Random(777 * trial + 5)
        database = skewed_database(
            query,
            n=30,
            rng=rng,
            heavy_fraction=rng.choice([0.0, 0.3, 0.7]),
        )
        p = rng.choice([2, 7, 16, 27])
        pure, vectorized = run_both(query, database, p=p, seed=trial)
        assert_parity(pure, vectorized)

    @pytest.mark.parametrize("seed", range(3))
    def test_parity_on_matchings_equals_plain_hc(self, seed):
        """No heavy hitters: both backends route like plain HC."""
        query = line_query(3)
        database = matching_database(query, n=40, rng=7)
        pure, vectorized = run_both(query, database, p=9, seed=seed)
        assert_parity(pure, vectorized)
        plain = run_hypercube(query, database, p=9, seed=seed)
        assert pure.answers == plain.answers
        assert (
            pure.report.rounds[0].received_bits
            == plain.report.rounds[0].received_bits
        )

    def test_parity_with_repeated_variable_atoms(self):
        query = parse_query("q(x,y) = S(x, x), T(x, y)")
        database = skewed_database(query, n=15, rng=2, heavy_fraction=0.5)
        pure, vectorized = run_both(query, database, p=8, seed=0)
        assert_parity(pure, vectorized)


class TestCapacityParity:
    def test_capacity_exceeded_fires_identically(self):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = funnel_database(96)
        failures = {}
        for backend in ("pure", "numpy"):
            with pytest.raises(CapacityExceeded) as info:
                run_hypercube_skew_aware(
                    query,
                    database,
                    p=16,
                    seed=3,
                    backend=backend,
                    enforce_capacity=True,
                    capacity_c=0.01,
                )
            failures[backend] = info.value
        pure, vectorized = failures["pure"], failures["numpy"]
        assert vectorized.worker == pure.worker
        assert vectorized.received_bits == pure.received_bits
        assert vectorized.round_index == pure.round_index

    def test_generous_capacity_passes_both(self):
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = funnel_database(64)
        pure, vectorized = run_both(
            query,
            database,
            p=16,
            seed=0,
            enforce_capacity=True,
            capacity_c=64.0,
        )
        assert_parity(pure, vectorized)
