"""Property-based tests for query theory invariants (hypothesis)."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.core.characteristic import characteristic, contract
from repro.core.covers import (
    covering_number,
    fractional_edge_packing,
    fractional_vertex_cover,
    is_fractional_edge_packing,
    is_fractional_vertex_cover,
)
from repro.core.query import Atom, ConjunctiveQuery
from repro.core.shares import share_exponents


@st.composite
def connected_queries(draw):
    """Random connected binary queries grown atom by atom."""
    num_atoms = draw(st.integers(min_value=1, max_value=7))
    atoms = [Atom("S1", ("v0", "v1"))]
    variables = ["v0", "v1"]
    for index in range(2, num_atoms + 1):
        anchor = draw(st.sampled_from(variables))
        if draw(st.booleans()):
            other = f"v{len(variables)}"
            variables.append(other)
        else:
            other = draw(st.sampled_from(variables))
        atoms.append(Atom(f"S{index}", (anchor, other)))
    return ConjunctiveQuery(atoms)


class TestCoveringInvariants:
    @given(connected_queries())
    @settings(max_examples=50, deadline=None)
    def test_tau_star_at_least_one(self, query):
        assert covering_number(query) >= 1

    @given(connected_queries())
    @settings(max_examples=50, deadline=None)
    def test_space_exponent_in_unit_interval(self, query):
        eps = 1 - 1 / covering_number(query)
        assert 0 <= eps < 1

    @given(connected_queries())
    @settings(max_examples=40, deadline=None)
    def test_optimal_solutions_feasible(self, query):
        cover = fractional_vertex_cover(query)
        packing = fractional_edge_packing(query)
        assert is_fractional_vertex_cover(query, cover)
        assert is_fractional_edge_packing(query, packing)
        assert sum(cover.values()) == sum(packing.values())

    @given(connected_queries())
    @settings(max_examples=40, deadline=None)
    def test_tau_monotone_under_subqueries(self, query):
        assume(query.num_atoms >= 2)
        names = [atom.name for atom in query.atoms]
        sub = query.subquery(names[:-1])
        assume(sub.is_connected)
        assert covering_number(sub) <= covering_number(query)

    @given(connected_queries())
    @settings(max_examples=40, deadline=None)
    def test_share_exponents_sum_to_one(self, query):
        exponents = share_exponents(query)
        assert sum(exponents.values()) == Fraction(1)
        assert all(value >= 0 for value in exponents.values())


class TestCharacteristicInvariants:
    @given(connected_queries())
    @settings(max_examples=60, deadline=None)
    def test_chi_nonpositive(self, query):
        """Lemma 2.1(c)."""
        assert characteristic(query) <= 0

    @given(connected_queries(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_lemma_21_b_contraction(self, query, data):
        """chi(q/M) = chi(q) - chi(M) for random proper M."""
        assume(query.num_atoms >= 2)
        names = [atom.name for atom in query.atoms]
        m = data.draw(
            st.sets(
                st.sampled_from(names),
                min_size=1,
                max_size=len(names) - 1,
            )
        )
        m_chi = characteristic(query.subquery(m))
        contracted = contract(query, m)
        assert characteristic(contracted) == characteristic(query) - m_chi

    @given(connected_queries(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_lemma_21_d_contraction_monotone(self, query, data):
        """chi(q) <= chi(q/M) for any proper M (Lemma 2.1(d))."""
        assume(query.num_atoms >= 2)
        names = [atom.name for atom in query.atoms]
        m = data.draw(
            st.sets(
                st.sampled_from(names),
                min_size=1,
                max_size=len(names) - 1,
            )
        )
        assert characteristic(query) <= characteristic(contract(query, m))

    @given(connected_queries())
    @settings(max_examples=50, deadline=None)
    def test_expected_size_exponent_bounded(self, query):
        """1 + chi <= 1: a connected query has at most n expected
        answers on matching databases (its output columns are keys)."""
        assert 1 + characteristic(query) <= 1
