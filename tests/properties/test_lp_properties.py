"""Property-based tests for the exact LP solver (hypothesis)."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import ExactSimplex, SimplexStatus


@st.composite
def covering_instances(draw):
    """Random 0/1 covering LPs: min 1.x s.t. Ax >= 1, x >= 0."""
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_cons = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for _ in range(num_cons):
        support = draw(
            st.sets(
                st.integers(min_value=0, max_value=num_vars - 1),
                min_size=1,
                max_size=num_vars,
            )
        )
        rows.append([1 if i in support else 0 for i in range(num_vars)])
    return num_vars, rows


@st.composite
def packing_instances(draw):
    """Random packing LPs: max c.x s.t. Ax <= b, x >= 0 with A, b >= 0."""
    num_vars = draw(st.integers(min_value=1, max_value=5))
    num_cons = draw(st.integers(min_value=1, max_value=5))
    entries = st.integers(min_value=0, max_value=4)
    matrix = [
        [draw(entries) for _ in range(num_vars)] for _ in range(num_cons)
    ]
    b = [draw(st.integers(min_value=1, max_value=9)) for _ in range(num_cons)]
    c = [draw(st.integers(min_value=0, max_value=5)) for _ in range(num_vars)]
    return c, matrix, b


class TestCoveringProperties:
    @given(covering_instances())
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_and_is_sane(self, instance):
        num_vars, rows = instance
        exact = ExactSimplex(
            [1] * num_vars,
            [(row, ">=", 1) for row in rows],
            maximize=False,
        ).solve()
        assert exact.status is SimplexStatus.OPTIMAL
        # Covering optimum lies in [1, #constraints].
        assert 0 < exact.objective <= len(rows)
        # Feasibility of the returned point.
        for row in rows:
            assert sum(
                coeff * value
                for coeff, value in zip(row, exact.solution)
            ) >= 1
        reference = linprog(
            c=np.ones(num_vars),
            A_ub=-np.array(rows),
            b_ub=-np.ones(len(rows)),
            bounds=[(0, None)] * num_vars,
            method="highs",
        )
        assert reference.status == 0
        assert abs(float(exact.objective) - reference.fun) < 1e-9

    @given(covering_instances())
    @settings(max_examples=40, deadline=None)
    def test_strong_duality(self, instance):
        num_vars, rows = instance
        exact = ExactSimplex(
            [1] * num_vars,
            [(row, ">=", 1) for row in rows],
            maximize=False,
        ).solve()
        dual_value = sum(exact.duals)
        assert dual_value == exact.objective
        # Dual feasibility: column sums <= 1.
        for column in range(num_vars):
            assert sum(
                exact.duals[i]
                for i, row in enumerate(rows)
                if row[column]
            ) <= 1


class TestPackingProperties:
    @given(packing_instances())
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, instance):
        c, matrix, b = instance
        exact = ExactSimplex(
            c, [(row, "<=", rhs) for row, rhs in zip(matrix, b)]
        ).solve()
        reference = linprog(
            c=-np.array(c, dtype=float),
            A_ub=np.array(matrix, dtype=float),
            b_ub=np.array(b, dtype=float),
            bounds=[(0, None)] * len(c),
            method="highs",
        )
        if exact.status is SimplexStatus.OPTIMAL:
            assert reference.status == 0
            assert abs(float(exact.objective) + reference.fun) < 1e-9
        elif exact.status is SimplexStatus.UNBOUNDED:
            assert reference.status == 3
        else:  # packing with b >= 0 is always feasible at x = 0
            raise AssertionError("packing LP reported infeasible")

    @given(packing_instances())
    @settings(max_examples=40, deadline=None)
    def test_solution_feasible(self, instance):
        c, matrix, b = instance
        exact = ExactSimplex(
            c, [(row, "<=", rhs) for row, rhs in zip(matrix, b)]
        ).solve()
        if exact.status is not SimplexStatus.OPTIMAL:
            return
        for row, rhs in zip(matrix, b):
            assert sum(
                coeff * value for coeff, value in zip(row, exact.solution)
            ) <= rhs
        assert all(value >= 0 for value in exact.solution)
