"""Unit tests for the exact two-phase simplex solver."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.lp.simplex import ExactSimplex, SimplexStatus


def solve(objective, constraints, maximize=True):
    return ExactSimplex(objective, constraints, maximize=maximize).solve()


class TestBasicSolves:
    def test_one_variable_max(self):
        result = solve([1], [([1], "<=", 5)])
        assert result.is_optimal
        assert result.objective == 5
        assert result.solution == (Fraction(5),)

    def test_one_variable_min_is_zero(self):
        result = solve([1], [([1], "<=", 5)], maximize=False)
        assert result.objective == 0

    def test_two_variable_max(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6.
        result = solve([1, 1], [([1, 2], "<=", 4), ([3, 1], "<=", 6)])
        assert result.objective == Fraction(14, 5)
        assert result.solution == (Fraction(8, 5), Fraction(6, 5))

    def test_triangle_cover_is_three_halves(self):
        result = solve(
            [1, 1, 1],
            [
                ([1, 1, 0], ">=", 1),
                ([0, 1, 1], ">=", 1),
                ([1, 0, 1], ">=", 1),
            ],
            maximize=False,
        )
        assert result.objective == Fraction(3, 2)

    def test_line3_cover_is_two(self):
        result = solve(
            [1, 1, 1, 1],
            [
                ([1, 1, 0, 0], ">=", 1),
                ([0, 1, 1, 0], ">=", 1),
                ([0, 0, 1, 1], ">=", 1),
            ],
            maximize=False,
        )
        assert result.objective == 2

    def test_equality_constraint(self):
        result = solve([1, 1], [([1, 1], "==", 2), ([1, 0], "<=", 1)])
        assert result.objective == 2

    def test_equality_only(self):
        result = solve([2, 3], [([1, 1], "==", 4)], maximize=False)
        assert result.objective == 8
        assert result.solution == (Fraction(4), Fraction(0))

    def test_exactness_no_float_dust(self):
        # tau*(C5) = 5/2: must be the exact fraction.
        constraints = [
            ([1, 1, 0, 0, 0], ">=", 1),
            ([0, 1, 1, 0, 0], ">=", 1),
            ([0, 0, 1, 1, 0], ">=", 1),
            ([0, 0, 0, 1, 1], ">=", 1),
            ([1, 0, 0, 0, 1], ">=", 1),
        ]
        result = solve([1] * 5, constraints, maximize=False)
        assert result.objective == Fraction(5, 2)


class TestStatuses:
    def test_unbounded(self):
        result = solve([1], [([0], "<=", 1)])
        assert result.status is SimplexStatus.UNBOUNDED
        assert result.objective is None

    def test_unbounded_two_vars(self):
        result = solve([1, 1], [([1, -1], "<=", 1)])
        assert result.status is SimplexStatus.UNBOUNDED

    def test_infeasible(self):
        result = solve([1], [([1], "<=", 1), ([1], ">=", 2)])
        assert result.status is SimplexStatus.INFEASIBLE

    def test_infeasible_equalities(self):
        result = solve([1, 1], [([1, 1], "==", 1), ([1, 1], "==", 2)])
        assert result.status is SimplexStatus.INFEASIBLE

    def test_min_unbounded_below_is_reported(self):
        # min -x with x free upward is unbounded below.
        result = solve([-1], [([0], "<=", 1)], maximize=False)
        assert result.status is SimplexStatus.UNBOUNDED


class TestNegativeRhs:
    def test_negative_rhs_le_becomes_ge(self):
        # x <= -1 with x >= 0 is infeasible... but -x <= -1 means x >= 1.
        result = solve([1], [([-1], "<=", -1)], maximize=False)
        assert result.is_optimal
        assert result.objective == 1

    def test_negative_rhs_infeasible(self):
        result = solve([1], [([1], "<=", -1)])
        assert result.status is SimplexStatus.INFEASIBLE

    def test_negative_rhs_equality(self):
        result = solve([1, 1], [([-1, -1], "==", -2)], maximize=False)
        assert result.is_optimal
        assert result.objective == 2


class TestDuals:
    def test_dual_value_matches_objective_max(self):
        constraints = [([1, 2], "<=", 4), ([3, 1], "<=", 6)]
        result = solve([1, 1], constraints)
        dual_value = sum(d * b for d, (_, _, b) in zip(result.duals, constraints))
        assert dual_value == result.objective

    def test_dual_value_matches_objective_min(self):
        constraints = [
            ([1, 1, 0], ">=", 1),
            ([0, 1, 1], ">=", 1),
            ([1, 0, 1], ">=", 1),
        ]
        result = solve([1, 1, 1], constraints, maximize=False)
        dual_value = sum(d * b for d, (_, _, b) in zip(result.duals, constraints))
        assert dual_value == result.objective

    def test_duals_are_feasible_for_dual_program(self):
        # Packing duals of the covering LP must satisfy A^T y <= c.
        constraints = [
            ([1, 1, 0], ">=", 1),
            ([0, 1, 1], ">=", 1),
            ([1, 0, 1], ">=", 1),
        ]
        result = solve([1, 1, 1], constraints, maximize=False)
        for column in range(3):
            column_sum = sum(
                result.duals[row]
                for row, (coeffs, _, _) in enumerate(constraints)
                if coeffs[column]
            )
            assert column_sum <= 1

    def test_duals_nonnegative_for_standard_forms(self):
        result = solve(
            [1, 1],
            [([1, 0], "<=", 3), ([0, 1], "<=", 2)],
        )
        assert all(d >= 0 for d in result.duals)


class TestDegeneracy:
    def test_bland_terminates_on_degenerate_lp(self):
        # A classic cycling-prone LP (Beale's example structure).
        result = solve(
            [Fraction(3, 4), -150, Fraction(1, 50), -6],
            [
                ([Fraction(1, 4), -60, Fraction(-1, 25), 9], "<=", 0),
                ([Fraction(1, 2), -90, Fraction(-1, 50), 3], "<=", 0),
                ([0, 0, 1, 0], "<=", 1),
            ],
        )
        assert result.is_optimal
        assert result.objective == Fraction(1, 20)

    def test_redundant_constraints(self):
        result = solve(
            [1, 1],
            [
                ([1, 1], "<=", 2),
                ([1, 1], "<=", 2),
                ([2, 2], "<=", 4),
            ],
        )
        assert result.objective == 2

    def test_redundant_equality_row_dropped(self):
        result = solve(
            [1, 1],
            [([1, 1], "==", 2), ([2, 2], "==", 4)],
        )
        assert result.is_optimal
        assert result.objective == 2


class TestValidation:
    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError, match="invalid constraint sense"):
            ExactSimplex([1], [([1], "<", 1)])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="coefficients"):
            ExactSimplex([1, 1], [([1], "<=", 1)])


class TestAgainstScipy:
    """Cross-check exact results against scipy's HiGHS on random LPs."""

    def test_random_covering_lps_match_scipy(self):
        import random

        import numpy as np
        from scipy.optimize import linprog

        rng = random.Random(5)
        for trial in range(25):
            num_vars = rng.randint(2, 6)
            num_cons = rng.randint(1, 6)
            rows = []
            for _ in range(num_cons):
                support = rng.sample(
                    range(num_vars), rng.randint(1, num_vars)
                )
                row = [1 if i in support else 0 for i in range(num_vars)]
                rows.append((row, ">=", 1))
            exact = solve([1] * num_vars, rows, maximize=False)
            assert exact.is_optimal
            scipy_result = linprog(
                c=np.ones(num_vars),
                A_ub=-np.array([row for row, _, _ in rows]),
                b_ub=-np.ones(num_cons),
                bounds=[(0, None)] * num_vars,
                method="highs",
            )
            assert scipy_result.status == 0
            assert abs(float(exact.objective) - scipy_result.fun) < 1e-9
