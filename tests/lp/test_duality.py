"""Unit tests for mechanical dualisation (Figure 1's LP pair)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.covers import edge_packing_program, vertex_cover_program
from repro.core.families import cycle_query, line_query, star_query
from repro.lp.duality import dual_of, verify_strong_duality
from repro.lp.model import LinearProgram, LPError


class TestDualConstruction:
    def test_dual_of_min_cover_is_max_packing(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1, "y": 1}, ">=", 1)
        lp.set_objective({"x": 1, "y": 1})
        dual = dual_of(lp)
        assert dual.maximize
        assert dual.variables == ("y0",)
        constraints = dual.constraints
        # One dual constraint per primal variable.
        assert len(constraints) == 2
        for coeffs, sense, rhs in constraints:
            assert sense == "<="
            assert rhs == 1
            assert coeffs == {"y0": Fraction(1)}

    def test_double_dual_value_is_primal_value(self):
        primal = vertex_cover_program(cycle_query(5))
        double_dual = dual_of(dual_of(primal))
        assert double_dual.solve().objective == primal.solve().objective

    def test_mixed_senses_rejected(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x")
        lp.add_constraint({"x": 1}, ">=", 1)
        lp.add_constraint({"x": 1}, "<=", 3)
        lp.set_objective({"x": 1})
        with pytest.raises(LPError, match="mixed"):
            dual_of(lp)

    def test_wrong_orientation_rejected(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x")
        lp.add_constraint({"x": 1}, ">=", 1)
        lp.set_objective({"x": 1})
        with pytest.raises(LPError, match="must use"):
            dual_of(lp)

    def test_no_constraints_rejected(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x")
        lp.set_objective({"x": 1})
        with pytest.raises(LPError, match="no constraints"):
            dual_of(lp)


class TestStrongDuality:
    @pytest.mark.parametrize(
        "query",
        [
            cycle_query(3),
            cycle_query(4),
            cycle_query(7),
            line_query(2),
            line_query(5),
            star_query(4),
        ],
        ids=lambda q: q.name,
    )
    def test_cover_and_packing_agree(self, query):
        value = verify_strong_duality(vertex_cover_program(query))
        packing_value = edge_packing_program(query).solve().objective
        assert value == packing_value

    def test_mechanical_dual_matches_hand_written_packing(self):
        """dual_of(cover LP) and the hand-written packing LP agree."""
        query = cycle_query(5)
        mechanical = dual_of(vertex_cover_program(query)).solve()
        hand_written = edge_packing_program(query).solve()
        assert mechanical.objective == hand_written.objective == Fraction(5, 2)
