"""Unit tests for the LinearProgram modelling layer."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.lp.model import LinearProgram, LPError
from repro.lp.simplex import SimplexStatus


def build_cover_lp():
    lp = LinearProgram(maximize=False)
    for name in ("x", "y", "z"):
        lp.add_variable(name)
    lp.add_constraint({"x": 1, "y": 1}, ">=", 1)
    lp.add_constraint({"y": 1, "z": 1}, ">=", 1)
    lp.add_constraint({"z": 1, "x": 1}, ">=", 1)
    lp.set_objective({"x": 1, "y": 1, "z": 1})
    return lp


class TestModelBuilding:
    def test_variables_in_order(self):
        lp = LinearProgram()
        lp.add_variable("b")
        lp.add_variable("a")
        assert lp.variables == ("b", "a")

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="duplicate"):
            lp.add_variable("x")

    def test_unknown_variable_in_constraint_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="unknown variable"):
            lp.add_constraint({"y": 1}, "<=", 1)

    def test_unknown_variable_in_objective_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="unknown variable"):
            lp.set_objective({"y": 1})

    def test_invalid_sense_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="invalid sense"):
            lp.add_constraint({"x": 1}, "!=", 1)

    def test_empty_lp_rejected(self):
        with pytest.raises(LPError, match="no variables"):
            LinearProgram().solve()

    def test_constraints_accessor_round_trips(self):
        lp = build_cover_lp()
        constraints = lp.constraints
        assert len(constraints) == 3
        coeffs, sense, rhs = constraints[0]
        assert coeffs == {"x": Fraction(1), "y": Fraction(1)}
        assert sense == ">="
        assert rhs == 1


class TestSolving:
    def test_cover_lp_solution(self):
        solution = build_cover_lp().solve()
        assert solution.is_optimal
        assert solution.objective == Fraction(3, 2)
        assert solution["x"] + solution["y"] >= 1
        assert sum(solution.values.values()) == Fraction(3, 2)

    def test_solution_getitem(self):
        solution = build_cover_lp().solve()
        for name in ("x", "y", "z"):
            assert solution[name] == solution.values[name]

    def test_duals_align_with_constraints(self):
        solution = build_cover_lp().solve()
        assert len(solution.duals) == 3
        assert sum(solution.duals) == Fraction(3, 2)

    def test_infeasible_status_propagates(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x")
        lp.add_constraint({"x": 1}, "<=", 1)
        lp.add_constraint({"x": 1}, ">=", 2)
        lp.set_objective({"x": 1})
        solution = lp.solve()
        assert solution.status is SimplexStatus.INFEASIBLE
        assert not solution.is_optimal
        assert solution.objective is None

    def test_objective_defaults_to_zero_coefficients(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1, "y": 1}, ">=", 1)
        lp.set_objective({"x": 1})  # y is free to absorb the constraint
        solution = lp.solve()
        assert solution.objective == 0
        assert solution["y"] >= 0
