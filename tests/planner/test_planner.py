"""Planner routing: which compiler wins, and bit-identical execution.

The satellite acceptance bar: skewed workloads route to
``compile_skew_aware``, matching databases to ``compile_hypercube``,
long chains to ``compile_multiround`` -- each Session execution
bit-identical to calling the chosen compiler's ``run_*`` entry point
directly.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import connect
from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.multiround import run_plan
from repro.algorithms.partial import run_partial_hypercube
from repro.algorithms.skewaware import run_hypercube_skew_aware
from repro.backend import numpy_available
from repro.core.plans import build_plan
from repro.core.query import QueryError, parse_query
from repro.data.columnar import columnar_database
from repro.data.generators import skewed_database
from repro.data.matching import matching_database
from repro.planner import Planner, collect_profile

BACKENDS = ["pure"] + (["numpy"] if numpy_available() else [])

LONG_CHAIN = "S1(a,b), S2(b,c), S3(c,d), S4(d,e), S5(e,f), S6(f,g)"


def _profile_for(query, database, backend="pure", **kwargs):
    return collect_profile(
        query, columnar_database(database, backend), backend=backend,
        **kwargs,
    )


class TestRoutingChoices:
    def test_matching_database_routes_to_hypercube(self, two_hop):
        database = matching_database(two_hop, n=200, rng=0)
        choice = Planner(16, "pure").choose(
            two_hop, _profile_for(two_hop, database)
        )
        assert choice.algorithm == "hypercube"

    def test_triangle_on_matching_database_stays_one_round(self, triangle):
        database = matching_database(triangle, n=200, rng=0)
        choice = Planner(16, "pure").choose(
            triangle, _profile_for(triangle, database)
        )
        assert choice.algorithm == "hypercube"

    def test_skewed_workload_routes_to_skew_aware(self, two_hop):
        database = skewed_database(
            two_hop, n=200, rng=0, heavy_fraction=0.5
        )
        profile = _profile_for(two_hop, database)
        assert profile.has_skew
        choice = Planner(16, "pure").choose(two_hop, profile)
        assert choice.algorithm == "skewaware"

    def test_long_chain_routes_to_multiround(self):
        chain = parse_query(LONG_CHAIN)
        database = matching_database(chain, n=200, rng=0)
        choice = Planner(16, "pure").choose(
            chain, _profile_for(chain, database)
        )
        assert choice.algorithm == "multiround"
        assert choice.explain.predicted_rounds > 1

    def test_pinned_low_eps_routes_to_multiround(self, triangle):
        database = matching_database(triangle, n=100, rng=0)
        choice = Planner(16, "pure").choose(
            triangle, _profile_for(triangle, database), eps=Fraction(0)
        )
        assert choice.algorithm == "multiround"

    def test_allow_partial_wins_below_the_space_exponent(self, triangle):
        database = matching_database(triangle, n=100, rng=0)
        choice = Planner(16, "pure").choose(
            triangle,
            _profile_for(triangle, database),
            eps=Fraction(0),
            allow_partial=True,
        )
        assert choice.algorithm == "partial"

    def test_pinned_algorithm_is_honoured(self, two_hop):
        database = matching_database(two_hop, n=100, rng=0)
        choice = Planner(16, "pure").choose(
            two_hop,
            _profile_for(two_hop, database),
            algorithm="multiround",
        )
        assert choice.algorithm == "multiround"
        assert choice.explain.pinned

    def test_unknown_pinned_algorithm_raises(self, two_hop):
        database = matching_database(two_hop, n=50, rng=0)
        with pytest.raises(QueryError, match="unknown algorithm"):
            Planner(16, "pure").choose(
                two_hop,
                _profile_for(two_hop, database),
                algorithm="quantum",
            )


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitIdenticalToDirectCompilers:
    """Session executions equal the chosen ``run_*`` entry point."""

    def test_hypercube_route(self, backend, triangle):
        database = matching_database(triangle, n=120, rng=0)
        session = connect(database, p=16, backend=backend)
        result = session.query(triangle).execute()
        direct = run_hypercube(triangle, database, p=16, backend=backend)
        assert result.algorithm == "hypercube"
        assert result.answers == direct.answers
        assert result.per_server == direct.per_server_answers
        assert (
            result.report.max_load_tuples == direct.report.max_load_tuples
        )
        assert result.report.total_bits == direct.report.total_bits

    def test_skewaware_route(self, backend, two_hop):
        database = skewed_database(
            two_hop, n=200, rng=0, heavy_fraction=0.5
        )
        session = connect(database, p=16, backend=backend)
        result = session.query(two_hop).execute()
        direct = run_hypercube_skew_aware(
            two_hop, database, p=16, backend=backend
        )
        assert result.algorithm == "skewaware"
        assert result.answers == direct.answers
        assert result.per_server == direct.per_server_answers
        assert result.heavy_hitters == direct.heavy_hitters
        assert (
            result.report.max_load_tuples == direct.report.max_load_tuples
        )

    def test_multiround_route(self, backend):
        chain = parse_query(LONG_CHAIN)
        database = matching_database(chain, n=80, rng=0)
        session = connect(database, p=16, backend=backend)
        result = session.query(chain).execute()
        direct = run_plan(
            build_plan(chain, Fraction(0)), database, p=16, backend=backend
        )
        assert result.algorithm == "multiround"
        assert result.answers == direct.answers
        assert result.view_sizes == direct.view_sizes
        assert result.report.num_rounds == direct.rounds_used

    def test_partial_route(self, backend, triangle):
        database = matching_database(triangle, n=120, rng=0)
        session = connect(database, p=16, backend=backend)
        result = session.query(
            triangle, eps=Fraction(0), allow_partial=True
        ).execute()
        direct = run_partial_hypercube(
            triangle, database, p=16, eps=Fraction(0), backend=backend
        )
        assert result.algorithm == "partial"
        assert result.answers == direct.answers


class TestExplain:
    def test_every_choice_reports_algorithm_shares_and_load(self):
        cases = [
            ("S1(x,y), S2(y,z)", matching_database, "hypercube"),
            (LONG_CHAIN, matching_database, "multiround"),
        ]
        for text, generator, expected in cases:
            query = parse_query(text)
            database = generator(query, n=100, rng=0)
            session = connect(database, p=16)
            explain = session.explain(query)
            assert explain.algorithm == expected
            assert explain.predicted_load > 0
            assert explain.predicted_rounds >= 1
            if expected in ("hypercube", "skewaware"):
                assert explain.shares is not None
            assert {c.algorithm for c in explain.candidates} == {
                "hypercube",
                "skewaware",
                "multiround",
                "partial",
            }
            assert explain.candidates[0].algorithm == expected

    def test_explain_reports_paper_bounds(self, triangle):
        database = matching_database(triangle, n=60, rng=0)
        explain = connect(database, p=16).explain(triangle)
        assert explain.tau_star == Fraction(3, 2)
        assert explain.space_exponent == Fraction(1, 3)

    def test_to_dict_is_json_serializable(self, two_hop):
        import json

        database = matching_database(two_hop, n=60, rng=0)
        explain = connect(database, p=16).explain(two_hop)
        payload = json.loads(json.dumps(explain.to_dict()))
        assert payload["algorithm"] == "hypercube"
        assert payload["shares"]["y"] == 16

    def test_format_renders_bids_table(self, two_hop):
        database = matching_database(two_hop, n=60, rng=0)
        text = connect(database, p=16).explain(two_hop).format()
        assert "planner bids" in text
        assert "chosen algorithm" in text


class TestDataProfile:
    def test_counts_rows_and_detects_skew(self, two_hop):
        database = skewed_database(
            two_hop, n=100, rng=0, heavy_fraction=0.5
        )
        profile = _profile_for(two_hop, database)
        assert profile.total_rows == sum(
            rows for _, rows in profile.relation_rows
        )
        assert profile.has_skew
        assert profile.heavy_multiplicity("y") > 0

    def test_matching_database_is_skew_free(self, two_hop):
        database = matching_database(two_hop, n=100, rng=0)
        profile = _profile_for(two_hop, database)
        assert not profile.has_skew
        assert profile.heavy_multiplicity("y") == 0

    def test_stride_sampling_scales_multiplicities(self, two_hop):
        database = skewed_database(
            two_hop, n=400, rng=0, heavy_fraction=0.5
        )
        full = _profile_for(two_hop, database)
        sampled = _profile_for(two_hop, database, sample_cap=50)
        assert sampled.sampled and not full.sampled
        assert sampled.has_skew
        # scaled-back multiplicity lands within 2x of the full count
        ratio = sampled.heavy_multiplicity("y") / max(
            1, full.heavy_multiplicity("y")
        )
        assert 0.5 <= ratio <= 2.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree_on_the_profile(self, backend, two_hop):
        database = skewed_database(
            two_hop, n=150, rng=0, heavy_fraction=0.4
        )
        pure = _profile_for(two_hop, database, backend="pure")
        other = _profile_for(two_hop, database, backend=backend)
        assert pure.heavy_values == other.heavy_values
        assert pure.heavy_multiplicities == other.heavy_multiplicities
