"""E7 -- CONNECTED-COMPONENTS: Omega(log p) vs dense 2 rounds (Thm 4.10).

Paper claim: with space exponent below 1, no tuple-based MPC algorithm
computes connected components of sparse graphs in O(1) rounds --
rounds grow like ``log p`` on the layered path instances -- while
dense graphs admit the two-round algorithm of Karloff et al. [16].
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import sweep_components_rounds
from repro.analysis.reporting import format_table


def test_components_round_scaling(once):
    rows = once(
        sweep_components_rounds,
        p_values=(4, 16, 64, 256),
        layer_size=16,
        seed=0,
    )
    emit(
        format_table(
            ["p", "k = p^(1/2) layers", "sparse rounds",
             "Thm 4.10 lower bound", "dense rounds"],
            [
                [
                    row["p"],
                    row["path_length_k"],
                    row["sparse_rounds"],
                    row["lower_bound"],
                    row["dense_rounds"],
                ]
                for row in rows
            ],
            title="E7: connected components, sparse vs dense "
            "(sparse grows ~log p; dense pinned at 2)",
        )
    )
    sparse = [row["sparse_rounds"] for row in rows]
    # Shape 1: sparse rounds are monotone nondecreasing and grow.
    assert sparse == sorted(sparse)
    assert sparse[-1] >= sparse[0] + 2
    # Shape 2: dense stays at exactly 2 rounds for all p.
    assert all(row["dense_rounds"] == 2 for row in rows)
    # Shape 3: measured rounds respect the theorem's lower bound.
    for row in rows:
        assert row["sparse_rounds"] >= row["lower_bound"]
