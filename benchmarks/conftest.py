"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables; without ``-s`` the rows are still checked by assertions).
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc

import pytest


def emit(text: str) -> None:
    """Print a regenerated table, surviving pytest capture settings."""
    print("\n" + text)


#: Peak RSS of executor children that exited during the *current*
#: measurement, summed.  Fan-out workers report their ``ru_maxrss`` as
#: they close (via ``repro.engine.parallel.fanout.drain_worker_peaks``,
#: which pops on read); accumulating the drained values here keeps
#: repeated :func:`peak_rss_bytes` calls monotone within one
#: measurement, while :func:`measure_peak` zeroes the account so one
#: benchmark's dead workers are never charged against a later
#: benchmark's ceiling.
_CLOSED_CHILDREN_BYTES = 0


def _drain_closed_worker_peaks() -> None:
    global _CLOSED_CHILDREN_BYTES
    try:
        from repro.engine.parallel.fanout import drain_worker_peaks
    except ImportError:  # pragma: no cover - partial checkout
        return
    _CLOSED_CHILDREN_BYTES += sum(drain_worker_peaks())


def _live_descendant_peak_bytes() -> int:
    """Summed ``VmHWM`` of every live descendant process (Linux).

    Walks ``/proc`` once, building the ppid tree, so executor
    processes that are still alive at measurement time (shard pools,
    fan-out workers, spawn resource trackers) are charged to the
    benchmark.  Returns 0 where ``/proc`` is unavailable.
    """
    proc = "/proc"
    if not os.path.isdir(proc):  # pragma: no cover - non-Linux
        return 0
    parents: dict[int, int] = {}
    peaks: dict[int, int] = {}
    for entry in os.listdir(proc):
        if not entry.isdigit():
            continue
        try:
            with open(os.path.join(proc, entry, "status")) as handle:
                fields = dict(
                    line.split(":", 1)
                    for line in handle
                    if ":" in line
                )
        except OSError:  # pid exited mid-walk
            continue
        pid = int(entry)
        try:
            parents[pid] = int(fields["PPid"].strip())
            peaks[pid] = int(fields["VmHWM"].strip().split()[0]) * 1024
        except (KeyError, ValueError):  # kernel threads lack VmHWM
            continue
    me = os.getpid()
    total = 0
    for pid in peaks:
        ancestor = parents.get(pid)
        while ancestor is not None and ancestor > 1:
            if ancestor == me:
                total += peaks[pid]
                break
            ancestor = parents.get(ancestor)
    return total


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size of the whole process tree.

    The benchmark process's own ``ru_maxrss`` (Linux reports it in
    kilobytes, macOS in bytes) plus every executor child it spawned:
    live descendants contribute their ``/proc/<pid>/status`` ``VmHWM``,
    and fan-out workers that already exited contribute the peak they
    reported at close.  Returns 0 on platforms without
    :mod:`resource`.  Lifetime-peak semantics make this a conservative
    ceiling check: nothing the benchmark did can have exceeded it.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    _drain_closed_worker_peaks()
    return peak + _CLOSED_CHILDREN_BYTES + _live_descendant_peak_bytes()


def measure_peak(func):
    """Run ``func`` once and measure its peak memory.

    Returns ``(result, memory)`` where ``memory`` holds the two fields
    every BENCH_*.json records:

    * ``tracemalloc_peak`` -- peak *Python-allocator* bytes during the
      call (numpy array buffers included via its tracemalloc domain);
    * ``peak_rss_bytes`` -- the process tree's peak RSS after the
      call (OS view; includes interpreter + imports, plus executor
      children alive at or closed during the call -- children from
      *earlier* measurements are written off here first).
    """
    global _CLOSED_CHILDREN_BYTES
    _drain_closed_worker_peaks()
    _CLOSED_CHILDREN_BYTES = 0
    gc.collect()
    tracemalloc.start()
    try:
        result = func()
        _, traced_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, {
        "tracemalloc_peak": int(traced_peak),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def best_of(runs, func):
    """Best-of-N wall-clock timing: ``(seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def record_bench(name: str, payload: dict) -> str:
    """Write one benchmark's results to ``BENCH_<name>.json``.

    The target directory is ``$BENCH_DIR`` (default: the current
    working directory); CI uploads these files as workflow artifacts
    so the perf trajectory of the engine is preserved run over run.

    Every payload records the runner's ``cores`` (unless the
    benchmark already did): recorded speedups are only comparable
    between runs on the same core count, and ``trend.py`` skips the
    comparison when the counts differ or fall below a benchmark's
    ``speedup_gate_cores`` threshold.
    """
    payload = dict(payload)
    payload.setdefault("cores", os.cpu_count() or 1)
    directory = os.environ.get("BENCH_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy sweeps)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def pytest_addoption(parser):
    """Select the execution engine for backend-aware benchmarks."""
    parser.addoption(
        "--backend",
        action="store",
        default="pure",
        choices=("pure", "numpy", "auto"),
        help="repro compute backend to benchmark (default: pure)",
    )


@pytest.fixture
def bench_backend(request):
    """The resolved compute backend selected via ``--backend``."""
    from repro.backend import resolve_backend

    return resolve_backend(request.config.getoption("--backend"))
