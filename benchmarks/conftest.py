"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables; without ``-s`` the rows are still checked by assertions).
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc

import pytest


def emit(text: str) -> None:
    """Print a regenerated table, surviving pytest capture settings."""
    print("\n" + text)


def peak_rss_bytes() -> int:
    """The process's lifetime peak resident set size, in bytes.

    Linux reports ``ru_maxrss`` in kilobytes, macOS in bytes; returns
    0 on platforms without :mod:`resource`.  Lifetime-peak semantics
    make this a conservative ceiling check: nothing the benchmark did
    can have exceeded it.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def measure_peak(func):
    """Run ``func`` once and measure its peak memory.

    Returns ``(result, memory)`` where ``memory`` holds the two fields
    every BENCH_*.json records:

    * ``tracemalloc_peak`` -- peak *Python-allocator* bytes during the
      call (numpy array buffers included via its tracemalloc domain);
    * ``peak_rss_bytes`` -- the process's lifetime peak RSS after the
      call (OS view; includes interpreter + imports).
    """
    gc.collect()
    tracemalloc.start()
    try:
        result = func()
        _, traced_peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, {
        "tracemalloc_peak": int(traced_peak),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def best_of(runs, func):
    """Best-of-N wall-clock timing: ``(seconds, last_result)``."""
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def record_bench(name: str, payload: dict) -> str:
    """Write one benchmark's results to ``BENCH_<name>.json``.

    The target directory is ``$BENCH_DIR`` (default: the current
    working directory); CI uploads these files as workflow artifacts
    so the perf trajectory of the engine is preserved run over run.
    """
    directory = os.environ.get("BENCH_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy sweeps)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def pytest_addoption(parser):
    """Select the execution engine for backend-aware benchmarks."""
    parser.addoption(
        "--backend",
        action="store",
        default="pure",
        choices=("pure", "numpy", "auto"),
        help="repro compute backend to benchmark (default: pure)",
    )


@pytest.fixture
def bench_backend(request):
    """The resolved compute backend selected via ``--backend``."""
    from repro.backend import resolve_backend

    return resolve_backend(request.config.getoption("--backend"))
