"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables; without ``-s`` the rows are still checked by assertions).
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a regenerated table, surviving pytest capture settings."""
    print("\n" + text)


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy sweeps)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def pytest_addoption(parser):
    """Select the execution engine for backend-aware benchmarks."""
    parser.addoption(
        "--backend",
        action="store",
        default="pure",
        choices=("pure", "numpy", "auto"),
        help="repro compute backend to benchmark (default: pure)",
    )


@pytest.fixture
def bench_backend(request):
    """The resolved compute backend selected via ``--backend``."""
    from repro.backend import resolve_backend

    return resolve_backend(request.config.getoption("--backend"))
