"""E14 -- async RPC serving: concurrent clients vs one client.

The RPC front end's claim is cross-request *coalescing*: identical
canonicalized statements arriving while one is in flight await the
same execution future, so concurrent clients share work a lone client
must pay for on every request.  (Result-cache amortization -- the
*after-the-fact* dual of coalescing -- is E13's gate in
bench_serving.py; this benchmark disables the result cache so the two
effects are measured separately, and closed-loop clients re-execute
their statements for real.)

``test_rpc_concurrency`` pins the gate: on the cached-plan workload
(five distinct query shapes over a shared C_3 vocabulary, every plan
hot after a warm-up pass) eight concurrent closed-loop clients
achieve >= 2x the aggregate requests/second of a single closed-loop
client against the same server -- the eight naturally lock-step onto
one coalesced execution per statement.  Runs on both backends (the CI
RPC smoke leg exercises ``pure`` and ``numpy``) and records
BENCH_rpc.json -- whose ``rpc_speedup`` field the trend gate
(benchmarks/trend.py) tracks run over run -- under an RSS ceiling.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import emit, measure_peak, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.matching import matching_database

VOCAB = "S1(x,y), S2(y,z), S3(z,x)"
N = 300
P = 16
REQUESTS_PER_CLIENT = 40
CLIENTS = 8
# The cached-plan workload: every shape compiles once during warm-up;
# the timed phases serve entirely from the plan/result caches.
DISTINCT_QUERIES = (
    "S1(x,y), S2(y,z)",
    "S2(a,b), S1(b,c)",
    "S1(x,y), S2(y,z), S3(z,x)",
    "S3(x,y), S1(y,z)",
    "S1(x,y)",
)
MEMORY_CEILING_BYTES = 2 * 1024**3


async def _client_loop(host: str, port: int, requests: list[str]) -> int:
    """One closed-loop client: send, await, repeat.  Returns answers."""
    reader, writer = await asyncio.open_connection(host, port)
    answered = 0
    try:
        for index, query in enumerate(requests):
            writer.write(
                (json.dumps({"id": index, "op": "query", "q": query}) + "\n")
                .encode()
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"], response
            answered += response["count"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return answered


async def _timed_phase(
    host: str, port: int, clients: int
) -> tuple[float, int]:
    """(elapsed seconds, answers served) for ``clients`` closed loops."""
    workload = [
        DISTINCT_QUERIES[i % len(DISTINCT_QUERIES)]
        for i in range(REQUESTS_PER_CLIENT)
    ]
    start = time.perf_counter()
    answered = await asyncio.gather(
        *[_client_loop(host, port, workload) for _ in range(clients)]
    )
    return time.perf_counter() - start, sum(answered)


async def _bench(backend: str) -> dict:
    from repro import connect
    from repro.serve.rpc import RpcServer

    vocab = parse_query(VOCAB)
    database = matching_database(vocab, n=N, rng=0)
    # result_cache_size=0: isolate in-flight coalescing from
    # result-cache replay (bench_serving.py's E13 gates the latter).
    session = connect(database, p=P, backend=backend, result_cache_size=0)
    async with RpcServer(session) as server:
        host, port = server.address
        # Warm-up: compile every plan, memoize every result.
        warm_elapsed, _ = await _timed_phase(host, port, 1)
        single_elapsed, single_answers = await _timed_phase(host, port, 1)
        multi_elapsed, multi_answers = await _timed_phase(
            host, port, CLIENTS
        )
        coalesced = server.stats.coalesced
        plan_compiles = session.stats.plans.misses
        result_hits = session.stats.result_hits
    single_rps = REQUESTS_PER_CLIENT / single_elapsed
    multi_rps = CLIENTS * REQUESTS_PER_CLIENT / multi_elapsed
    assert single_answers * CLIENTS == multi_answers
    return {
        "warm_seconds": warm_elapsed,
        "single_seconds": single_elapsed,
        "multi_seconds": multi_elapsed,
        "single_rps": single_rps,
        "multi_rps": multi_rps,
        "rpc_speedup": multi_rps / single_rps,
        "coalesced": coalesced,
        "plan_compiles": plan_compiles,
        "result_hits": result_hits,
    }


def test_rpc_concurrency(once, bench_backend):
    """8 concurrent clients >= 2x one client's aggregate throughput."""

    def timed():
        # Memory on a separate untimed run: tracemalloc slows the
        # per-request hot path by an order of magnitude, so the gated
        # timings come from a clean second run.
        _, memory = measure_peak(
            lambda: asyncio.run(_bench(bench_backend))
        )
        metrics = asyncio.run(_bench(bench_backend))
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return metrics, memory

    metrics, memory = once(timed)
    speedup = metrics["rpc_speedup"]
    emit(
        format_table(
            ["clients", "seconds", "aggregate req/s", "speedup"],
            [
                [1, f"{metrics['single_seconds']:.4f}",
                 f"{metrics['single_rps']:.0f}", "1.0x"],
                [CLIENTS, f"{metrics['multi_seconds']:.4f}",
                 f"{metrics['multi_rps']:.0f}", f"{speedup:.1f}x"],
            ],
            title=f"E14: async RPC, {REQUESTS_PER_CLIENT} requests/client, "
            f"n={N} p={P} ({bench_backend}); plan compiles: "
            f"{metrics['plan_compiles']}, result hits: "
            f"{metrics['result_hits']}, coalesced: {metrics['coalesced']}",
        )
    )
    record_bench(
        "rpc",
        {
            "vocab": VOCAB,
            "backend": bench_backend,
            "n": N,
            "p": P,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "distinct_queries": len(DISTINCT_QUERIES),
            **metrics,
            **memory,
        },
    )
    # The plan cache serves the whole timed run: at most one compile
    # per isomorphism class of the five shapes.
    assert metrics["plan_compiles"] < len(DISTINCT_QUERIES)
    assert speedup >= 2.0, (
        f"8-client aggregate throughput only {speedup:.2f}x one client"
    )
    assert memory["peak_rss_bytes"] <= MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{MEMORY_CEILING_BYTES}"
    )
