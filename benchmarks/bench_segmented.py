"""E12 -- fleet-segmented local evaluation at large n (the PR 3 gate).

After routing unified on the shared round engine, the simulator's
wall-clock became dominated by *local* evaluation: the per-worker
numpy path loops over all ``p`` workers in Python, re-concatenating
each worker's mailbox batches and paying full join setup per worker.
The segmented path evaluates the whole fleet in one vectorized join
over the round's delivery pools (worker id prepended to every join
key; sort-free direct-address lookups where the pools are pre-sorted).

``test_segmented_local_eval_speedup`` pins the engineering gate:
segmented fleet-wide local eval is >= 2x faster than the per-worker
numpy loop on ``L_8`` at p=64, n=10^5, with bit-identical merged
answers and per-server counts.  The BENCH_segmented_speedup.json
artifact records the timings plus peak-memory fields
(``tracemalloc_peak``, ``peak_rss_bytes``), and the run fails if peak
memory blows its ceiling.

Set ``REPRO_BENCH_XL=1`` to also run the n=10^6 leg.  Since the
streamed round pipeline landed, that leg routes in column blocks and
evaluates one bounded worker shard at a time, so it fits a 2.5 GB
ceiling instead of the ~5.6 GB the monolithic pools needed; the old
peak is kept as ``monolithic_rss_bytes`` in the JSON for one release
so the trend history shows the drop.
"""

from __future__ import annotations

import os
from fractions import Fraction

import pytest

from conftest import best_of, emit, measure_peak, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.covers import fractional_vertex_cover
from repro.core.families import line_query
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.columnar import columnar_database
from repro.data.generators import matching_database_columnar
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator

SPEEDUP_N = 100_000
SPEEDUP_P = 64
SPEEDUP_K = 8
# Lifetime peak RSS ceiling for the n=10^5 leg.  The L_8 round pools
# ~16M delivered tuples (~0.7 GB peak on the measured runs); 3 GB
# catches a regression to quadratic blowup while leaving allocator
# headroom on CI runners.
MEMORY_CEILING_BYTES = 3 * 1024**3


def _route_l8(n: int, p: int):
    """One HC round of L_k at (n, p); returns (query, simulator, workers)."""
    from repro.engine import GridSpec, HashRoute, RoundEngine

    query = line_query(SPEEDUP_K)
    database = matching_database_columnar(query, n=n, seed=0)
    cover = fractional_vertex_cover(query)
    allocation = allocate_integer_shares(
        share_exponents(query, cover), p
    )
    grid = GridSpec.from_shares(
        query.variables, allocation.shares, HashFamily(0)
    )
    config = MPCConfig(
        p=p, eps=Fraction(1, 2), c=4.0, backend="numpy"
    )
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator)
    steps = [
        HashRoute(relation=atom.name, atom=atom, grid=grid)
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, "numpy"))
    return query, simulator, list(range(allocation.used_servers))


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_segmented_local_eval_speedup(once):
    """Segmented fleet-wide eval >= 2x over the per-worker numpy loop."""
    from repro.engine import (
        fleet_answer_table,
        merged_answer_table_per_worker,
    )

    def timed():
        (query, simulator, workers), memory = measure_peak(
            lambda: _route_l8(SPEEDUP_N, SPEEDUP_P)
        )
        per_worker_seconds, per_worker = best_of(
            3,
            lambda: merged_answer_table_per_worker(
                query, simulator, workers
            ),
        )
        segmented_seconds, segmented = best_of(
            3, lambda: fleet_answer_table(query, simulator, workers)
        )
        # Lifetime peak RSS re-read after the timed paths ran, so the
        # ceiling covers local evaluation too (tracemalloc covered
        # only routing -- it must never wrap the timed calls).
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return (
            per_worker_seconds,
            segmented_seconds,
            per_worker,
            segmented,
            memory,
        )

    per_worker_seconds, segmented_seconds, per_worker, segmented, memory = (
        once(timed)
    )
    speedup = per_worker_seconds / segmented_seconds
    emit(
        format_table(
            ["local eval path", "seconds", "speedup"],
            [
                ["per-worker loop", f"{per_worker_seconds:.4f}", "1.0x"],
                ["segmented fleet", f"{segmented_seconds:.4f}",
                 f"{speedup:.1f}x"],
            ],
            title=f"E12: L_{SPEEDUP_K} local eval n={SPEEDUP_N} "
            f"p={SPEEDUP_P}: per-worker vs segmented "
            f"(peak RSS {memory['peak_rss_bytes'] / 1024**2:.0f} MiB)",
        )
    )
    record_bench(
        "segmented_speedup",
        {
            "query": f"L{SPEEDUP_K}",
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "per_worker_seconds": per_worker_seconds,
            "segmented_seconds": segmented_seconds,
            "speedup": speedup,
            "answers": int(len(segmented[0])),
            **memory,
        },
    )
    # The two paths implement the identical local semantics.
    assert (per_worker[0] == segmented[0]).all()
    assert per_worker[1] == segmented[1]
    assert speedup >= 2.0, f"segmented eval only {speedup:.2f}x faster"
    assert memory["peak_rss_bytes"] <= MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{MEMORY_CEILING_BYTES}"
    )


#: Streamed ceiling for the XL leg (was ~5.6 GB monolithic).
XL_CEILING_BYTES = int(2.5 * 1024**3)
#: The monolithic peak the leg recorded before the streamed pipeline
#: (PR 3's measured ~5.6 GB); kept in the JSON for one release so the
#: artifact history shows the drop, then to be removed.
MONOLITHIC_RSS_BYTES = int(5.6 * 1024**3)


def _stream_l8(n: int, p: int, chunk_rows: int):
    """The streamed twin of :func:`_route_l8` (see bench_streaming)."""
    from repro.engine import GridSpec, HashRoute, RoundEngine

    query = line_query(SPEEDUP_K)
    database = matching_database_columnar(query, n=n, seed=0)
    cover = fractional_vertex_cover(query)
    allocation = allocate_integer_shares(
        share_exponents(query, cover), p
    )
    grid = GridSpec.from_shares(
        query.variables, allocation.shares, HashFamily(0)
    )
    config = MPCConfig(
        p=p, eps=Fraction(1, 2), c=4.0, backend="numpy"
    )
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator, chunk_rows=chunk_rows)
    steps = [
        HashRoute(relation=atom.name, atom=atom, grid=grid)
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, "numpy"))
    return query, simulator, list(range(allocation.used_servers))


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_XL"),
    reason="set REPRO_BENCH_XL=1 for the n=10^6 leg",
)
def test_segmented_local_eval_million(once):
    """The n=10^6 leg: streamed route + shard-wise segmented eval."""
    from repro.engine.local import _eval_shard_local, _plan_eval_shards

    n = 1_000_000
    chunk_rows = 262_144
    key_of = lambda name: name  # noqa: E731 - trivial identity

    def timed():
        (query, simulator, workers), memory = measure_peak(
            lambda: _stream_l8(n, SPEEDUP_P, chunk_rows)
        )

        def evaluate():
            shards = _plan_eval_shards(
                query, simulator, len(workers), key_of
            )
            total = 0
            for lo, hi in shards:
                answers, _ = _eval_shard_local(
                    query, simulator, lo, hi, key_of
                )
                total += len(answers)
                del answers
            return total

        seconds, total = best_of(1, evaluate)
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return seconds, total, memory

    seconds, total, memory = once(timed)
    emit(
        f"E12-XL: L_{SPEEDUP_K} n={n} p={SPEEDUP_P} streamed "
        f"shard-wise local eval {seconds:.2f}s, {total} answers, "
        f"peak RSS {memory['peak_rss_bytes'] / 1024**3:.2f} GiB "
        f"(monolithic needed "
        f"{MONOLITHIC_RSS_BYTES / 1024**3:.1f} GiB)"
    )
    record_bench(
        "segmented_million",
        {
            "query": f"L{SPEEDUP_K}",
            "n": n,
            "p": SPEEDUP_P,
            "chunk_rows": chunk_rows,
            "segmented_seconds": seconds,
            "answers": total,
            "rss_ceiling_bytes": XL_CEILING_BYTES,
            "monolithic_rss_bytes": MONOLITHIC_RSS_BYTES,
            **memory,
        },
    )
    assert total == n
    assert memory["peak_rss_bytes"] <= XL_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds streamed ceiling "
        f"{XL_CEILING_BYTES}"
    )
