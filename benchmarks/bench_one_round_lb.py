"""E5 -- The one-round lower bound, made visible (Thm 3.3 / Prop 3.11).

Paper claim: a one-round MPC(eps) algorithm with ``eps`` below the
space exponent reports only an ``O(p^{-(tau*(1-eps)-1)})`` fraction of
answers, and Proposition 3.11's algorithm achieves that rate.  We run
that algorithm for ``L_3`` (tau* = 2) at eps = 0 and eps = 1/4 and
check the measured fraction tracks the theoretical decay across p.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit

from repro.analysis.experiments import sweep_one_round_fraction
from repro.analysis.reporting import format_table
from repro.core.families import line_query


def run_sweeps():
    query = line_query(3)
    return {
        "eps=0": sweep_one_round_fraction(
            query, eps=Fraction(0), n=240, p_values=(4, 8, 16, 32),
            trials=4, seed=0,
        ),
        "eps=1/4": sweep_one_round_fraction(
            query, eps=Fraction(1, 4), n=240, p_values=(4, 8, 16, 32),
            trials=4, seed=1,
        ),
    }


def test_one_round_fraction_decay(once):
    results = once(run_sweeps)
    for label, rows in results.items():
        emit(
            format_table(
                ["p", "measured fraction", "theory p^-(tau*(1-eps)-1)",
                 "measured/theory"],
                [
                    [
                        row["p"],
                        row["measured_fraction"],
                        row["theory_fraction"],
                        row["ratio"],
                    ]
                    for row in rows
                ],
                title=f"E5: L3 one-round reported fraction at {label} "
                "(Thm 3.3 tight by Prop 3.11)",
            )
        )
        measured = [row["measured_fraction"] for row in rows]
        # Shape 1: monotone decay in p.
        assert measured == sorted(measured, reverse=True), (label, measured)
        # Shape 2: within a constant factor of theory at every p.
        for row in rows:
            assert row["measured_fraction"] <= 4 * row["theory_fraction"]
            assert row["measured_fraction"] >= row["theory_fraction"] / 5
        # Shape 3: the eps = 1/4 curve sits above the eps = 0 curve.
    zero = [row["measured_fraction"] for row in results["eps=0"]]
    quarter = [row["measured_fraction"] for row in results["eps=1/4"]]
    assert sum(quarter) > sum(zero)
