"""E1 -- Regenerate Table 1: query family analysis.

Paper row (Table 1): for each family ``C_k, T_k, L_k, B_{k,m}`` the
expected answer size, the minimum fractional vertex cover, the share
exponents, ``tau*`` and the space exponent.  Every analytic cell is
recomputed by the exact LP; answer sizes are additionally *measured*
on random matching databases.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.reporting import format_table
from repro.analysis.tables import table1_rows


def test_table1_regeneration(once):
    rows = once(table1_rows, n=120, trials=5, seed=0)
    assert all(row.matches_paper for row in rows)
    emit(
        format_table(
            [
                "query",
                "E[|q|] (paper)",
                "E[|q|] (measured)",
                "tau*",
                "space exp",
                "min cover",
                "share exps",
            ],
            [
                [
                    row.name,
                    f"{row.expected_answer_size:g}",
                    f"{row.measured_answer_size:g}",
                    row.tau_star,
                    row.space_exponent,
                    _compact(row.vertex_cover),
                    _compact(row.share_exponents),
                ]
                for row in rows
            ],
            title="Table 1 (recomputed; matches paper closed forms)",
        )
    )
    # Shape assertions: chi = 0 families measure exactly n; chi = -1
    # families measure O(1).
    by_name = {row.name: row for row in rows}
    assert by_name["L3"].measured_answer_size == 120
    assert by_name["T3"].measured_answer_size == 120
    assert by_name["C3"].measured_answer_size < 15


def _compact(mapping):
    return "(" + ",".join(str(value) for value in mapping.values()) + ")"
