"""E13 -- repeated-query serving: cached plans vs compile-per-query.

The serving layer's claim is that planning is worth amortizing: a
long-lived :class:`~repro.serve.service.QueryService` compiles each
query once (sharing plans across isomorphic requests), keeps pre-
routed columns per database version, and memoizes whole executions,
while a compile-per-query loop pays covers + shares + grid + routing
on every request.

``test_serving_throughput`` pins the gate: on a 100-request mixed
workload (10 distinct query shapes over a shared C_3 vocabulary,
including isomorphic renamings, each repeated 10 times) the service
answers >= 3x faster than per-request ``run_hypercube``, with
per-request answers verified equal between the two paths beforehand.
Runs on both backends -- the CI serving smoke leg exercises ``pure``
and ``numpy`` -- and records BENCH_serving.json with throughput,
cache-hit counters and the standard peak-memory fields under an RSS
ceiling.
"""

from __future__ import annotations

import pytest

from conftest import best_of, emit, measure_peak, peak_rss_bytes, record_bench

from repro.algorithms.hypercube import run_hypercube
from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.matching import matching_database

VOCAB = "S1(x,y), S2(y,z), S3(z,x)"
N = 1_000
P = 16
REPEATS = 10
# 10 distinct shapes x REPEATS = the 100-request mixed workload.
# Several entries are isomorphic renamings of earlier ones -- the
# plan cache must serve those without recompiling.
DISTINCT_QUERIES = (
    "S1(x,y), S2(y,z)",
    "S2(a,b), S1(b,c)",
    "S2(x,y), S3(y,z)",
    "S1(x,y), S2(y,z), S3(z,x)",
    "S3(u,v), S1(v,w), S2(w,u)",
    "S1(x,y)",
    "S3(x,y), S1(y,z)",
    "S1(b,c), S2(c,d)",
    "S1(x,y), S3(y,x)",
    "S2(s,t), S3(t,u), S1(u,s)",
)
# Lifetime peak RSS ceiling: the workload is small (n=1e3); 2 GB
# catches runaway caching while leaving CI allocator headroom.
MEMORY_CEILING_BYTES = 2 * 1024**3


def _workload() -> list[str]:
    requests: list[str] = []
    for round_index in range(REPEATS):
        for query in DISTINCT_QUERIES:
            requests.append(query)
    assert len(requests) == 100
    return requests


def test_serving_throughput(once, bench_backend):
    """QueryService >= 3x over compile-per-query on the mixed workload."""
    from repro.serve import QueryService

    vocab = parse_query(VOCAB)
    requests = _workload()

    def timed():
        (database,), memory = measure_peak(
            lambda: (matching_database(vocab, n=N, rng=0),)
        )

        # Correctness first (untimed): the service's answers match a
        # fresh compile-and-execute for every distinct query.  Loads
        # must match bit-for-bit whenever the served plan was compiled
        # for this exact query; an isomorphic hit executes the class
        # representative's plan, whose (equally valid) routing hashes
        # by the canonical variable names, so only answers must agree.
        parity_service = QueryService(database, p=P, backend=bench_backend)
        for query in DISTINCT_QUERIES:
            served = parity_service.execute(query)
            fresh = run_hypercube(
                parse_query(query), database, p=P, backend=bench_backend
            )
            assert served.answers == fresh.answers, query
            if served.plan.signature.query_text == str(parse_query(query)):
                assert served.per_server == fresh.per_server_answers, query

        baseline_seconds, _ = best_of(
            1,
            lambda: [
                run_hypercube(
                    parse_query(query), database, p=P, backend=bench_backend
                )
                for query in requests
            ],
        )

        service = QueryService(database, p=P, backend=bench_backend)
        service_seconds, _ = best_of(
            1, lambda: [service.execute(query) for query in requests]
        )
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return baseline_seconds, service_seconds, service, memory

    baseline_seconds, service_seconds, service, memory = once(timed)
    speedup = baseline_seconds / service_seconds
    stats = service.stats
    emit(
        format_table(
            ["serving path", "seconds", "req/s", "speedup"],
            [
                [
                    "compile-per-query",
                    f"{baseline_seconds:.4f}",
                    f"{len(requests) / baseline_seconds:.0f}",
                    "1.0x",
                ],
                [
                    "cached-plan service",
                    f"{service_seconds:.4f}",
                    f"{len(requests) / service_seconds:.0f}",
                    f"{speedup:.1f}x",
                ],
            ],
            title=f"E13: {len(requests)}-query mixed workload, n={N} "
            f"p={P} ({bench_backend}); plan compiles: "
            f"{stats.plans.misses}, isomorphic plan hits: "
            f"{stats.plans.isomorphic_hits}, result hits: "
            f"{stats.result_hits}",
        )
    )
    record_bench(
        "serving",
        {
            "vocab": VOCAB,
            "backend": bench_backend,
            "n": N,
            "p": P,
            "requests": len(requests),
            "distinct_queries": len(DISTINCT_QUERIES),
            "baseline_seconds": baseline_seconds,
            "service_seconds": service_seconds,
            "speedup": speedup,
            "plan_compiles": stats.plans.misses,
            "plan_hits": stats.plans.hits,
            "isomorphic_plan_hits": stats.plans.isomorphic_hits,
            "result_hits": stats.result_hits,
            "routing_hits": stats.routing_hits,
            **memory,
        },
    )
    # The whole point of the serving layer: plans compile once per
    # isomorphism class, repeats answer from the caches.
    assert stats.plans.misses < len(DISTINCT_QUERIES)
    assert stats.result_hits >= len(requests) - len(DISTINCT_QUERIES)
    assert speedup >= 3.0, f"cached-plan serving only {speedup:.2f}x faster"
    assert memory["peak_rss_bytes"] <= MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{MEMORY_CEILING_BYTES}"
    )
