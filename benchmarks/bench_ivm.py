"""E14 -- delta-aware serving: incremental maintenance vs re-execution.

The IVM subsystem's claim: on an update-heavy serving workload, a
request that follows a small delta should cost proportional to the
*delta*, not the database -- while staying bit-identical to the full
re-execution it replaced.

``test_ivm_throughput`` pins the gate: on a 90/10 read/write workload
(10 update rounds, each a single-row insert followed by 9 distinct
query shapes) the IVM-enabled service answers the post-delta reads
>= 5x faster than an identical service with ``ivm=False``, with every
read's answers verified equal between the two paths, under the
standard RSS ceiling and the IVM store's own byte budget.

``test_ivm_fault_drill`` pins the degradation contract: under
``REPRO_FAULT_WORKER_DEATH`` the incremental path steps aside for the
named reason ``faults-active`` and every answer still matches the
healthy control -- degraded throughput, never wrong answers.
"""

from __future__ import annotations

import time

from conftest import emit, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.matching import matching_database
from repro.serve import QueryService
from repro.serve.faults import WORKER_DEATH_ENV

VOCAB = "S1(x,y), S2(y,z), S3(z,x)"
N = 1_000
#: The numpy engine re-executes n=1000 too quickly for the fixed
#: per-read serving overhead not to dominate; scale the database up so
#: the full-path cost is actually proportional to the data.
N_NUMPY = 8_000
P = 16
ROUNDS = 10
# 9 read shapes x ROUNDS = 90 reads against 10 writes: the 90/10 mix.
# Pairwise NON-isomorphic (the plan cache canonicalises up to renaming
# of variables and relations): isomorphic repeats would share a result
# cache entry and be served as plain result hits instead of merges.
DISTINCT_QUERIES = (
    "S1(x,y)",
    "S1(x,y), S2(y,z)",
    "S1(x,y), S2(x,z)",
    "S1(x,y), S3(y,x)",
    "S1(x,y), S2(x,y)",
    "S1(x,y), S2(y,z), S3(z,x)",
    "S1(x,y), S2(y,z), S3(z,w)",
    "S1(x,y), S2(y,z), S3(y,w)",
    "S1(x,y), S2(x,z), S3(x,w)",
)
#: Lifetime peak RSS ceiling, same rationale as bench_serving.
MEMORY_CEILING_BYTES = 2 * 1024**3


def _delta_rows(database, count):
    """``count`` absent S1 rows within the domain (no bit growth)."""
    present = set(database["S1"].tuples)
    rows = []
    for a in range(1, database.domain_size + 1):
        for b in range(1, database.domain_size + 1):
            if (a, b) not in present:
                rows.append((a, b))
                if len(rows) == count:
                    return rows
    raise AssertionError("domain exhausted")


def _run_leg(backend, deltas, ivm, n=N):
    """One service through the 90/10 workload; timed reads only."""
    database = matching_database(parse_query(VOCAB), n=n, rng=0)
    service = QueryService(database, p=P, backend=backend, ivm=ivm)
    for query in DISTINCT_QUERIES:  # warm: compile + capture state
        service.execute(query)
    read_seconds = 0.0
    transcript = []
    statuses = []
    for rows in deltas:
        service.update(inserts={"S1": rows})
        start = time.perf_counter()
        results = [service.execute(query) for query in DISTINCT_QUERIES]
        read_seconds += time.perf_counter() - start
        transcript.append([result.answers for result in results])
        statuses.extend(result.ivm for result in results)
    return service, read_seconds, transcript, statuses


def test_ivm_throughput(once, bench_backend):
    """IVM reads >= 5x over full re-execution on the 90/10 workload."""
    n = N if bench_backend == "pure" else N_NUMPY
    probe = matching_database(parse_query(VOCAB), n=n, rng=0)
    rows = _delta_rows(probe, ROUNDS)
    deltas = [[row] for row in rows]

    def timed():
        control, control_seconds, control_answers, _ = _run_leg(
            bench_backend, deltas, ivm=False, n=n
        )
        served, served_seconds, served_answers, statuses = _run_leg(
            bench_backend, deltas, ivm=True, n=n
        )
        return (
            control,
            served,
            control_seconds,
            served_seconds,
            control_answers,
            served_answers,
            statuses,
        )

    (
        control,
        served,
        control_seconds,
        served_seconds,
        control_answers,
        served_answers,
        statuses,
    ) = once(timed)

    # Bit-identical answers on every post-delta read, both paths.
    assert served_answers == control_answers
    # Each round's first pass merges; repeats within a round would be
    # result hits, but every shape runs once per version, so every
    # read was served by a delta merge.
    reads = ROUNDS * len(DISTINCT_QUERIES)
    assert statuses.count("merged") == reads, statuses
    assert served.stats.ivm_hits == reads
    assert served.stats.ivm_fallbacks == 0
    assert control.stats.ivm_hits == 0

    speedup = control_seconds / served_seconds
    retained = served.ivm_retained_bytes
    budget = served.ivm.policy.max_bytes
    memory_bytes = peak_rss_bytes()
    emit(
        format_table(
            ["serving path", "read seconds", "reads/s", "speedup"],
            [
                [
                    "full re-execution",
                    f"{control_seconds:.4f}",
                    f"{reads / control_seconds:.0f}",
                    "1.0x",
                ],
                [
                    "incremental maintenance",
                    f"{served_seconds:.4f}",
                    f"{reads / served_seconds:.0f}",
                    f"{speedup:.1f}x",
                ],
            ],
            title=f"E14: 90/10 workload, n={n} p={P} "
            f"({bench_backend}); {reads} post-delta reads, "
            f"{ROUNDS} single-row deltas; retained "
            f"{served.ivm_retained_states} states / {retained} bytes",
        )
    )
    record_bench(
        "ivm",
        {
            "vocab": VOCAB,
            "backend": bench_backend,
            "n": n,
            "p": P,
            "rounds": ROUNDS,
            "reads": reads,
            "writes": ROUNDS,
            "control_read_seconds": control_seconds,
            "ivm_read_seconds": served_seconds,
            "speedup": speedup,
            "ivm_hits": served.stats.ivm_hits,
            "ivm_fallbacks": served.stats.ivm_fallbacks,
            "retained_states": served.ivm_retained_states,
            "retained_bytes": retained,
            "peak_rss_bytes": memory_bytes,
        },
    )
    assert speedup >= 5.0, f"incremental serving only {speedup:.2f}x faster"
    assert retained <= budget, f"retained {retained} over budget {budget}"
    assert memory_bytes <= MEMORY_CEILING_BYTES, (
        f"peak RSS {memory_bytes} exceeds ceiling {MEMORY_CEILING_BYTES}"
    )


def test_ivm_fault_drill(once, bench_backend, monkeypatch):
    """Worker-death drill: full-path degradation, identical answers."""
    # Smaller data: the drill checks degradation, not throughput.
    drill_n = 200
    probe = matching_database(parse_query(VOCAB), n=drill_n, rng=0)
    deltas = [[row] for row in _delta_rows(probe, 3)]

    def drilled():
        control, _, control_answers, _ = _run_leg(
            bench_backend, deltas, ivm=False, n=drill_n
        )
        monkeypatch.setenv(WORKER_DEATH_ENV, "1")
        try:
            served, _, served_answers, statuses = _run_leg(
                bench_backend, deltas, ivm=True, n=drill_n
            )
        finally:
            monkeypatch.delenv(WORKER_DEATH_ENV)
        return control_answers, served, served_answers, statuses

    control_answers, served, served_answers, statuses = once(drilled)
    assert served_answers == control_answers
    assert set(statuses) == {"faults-active"}, statuses
    assert served.stats.ivm_hits == 0
    assert served.stats.ivm_fallbacks == len(statuses)
    emit(
        f"E14 fault drill: {len(statuses)} post-delta reads under "
        "REPRO_FAULT_WORKER_DEATH all fell back to full re-execution "
        "with answers identical to the healthy control."
    )
