"""E15 -- multi-process fan-out: N executor processes vs one.

PR 6's tentpole claim: the RPC front end saturates a single core
because every statement ultimately executes on one session thread
(bench_rpc.py's E14 wins come from *sharing* executions, not from
adding compute).  Statement fan-out (``connect(db, workers=N)``)
breaks that ceiling -- each statement ships whole to one of N
executor processes holding its own session over a shared-memory
column snapshot, bit-identical answers guaranteed.

``test_parallel_fanout`` pins the gate on the bench_rpc workload
(eight closed-loop clients, five query shapes over a shared C_3
vocabulary, result cache off so every request actually executes):

* parity, always: the multi-process server answers exactly what the
  single-process server answers, on any machine;
* speedup, on 4+-core runners only: the fan-out server's aggregate
  wall clock beats the single-process server by >= 3x.  Single-core
  containers still run the parity half -- the speedup assert is
  meaningless where there are no cores to fan out to.

Clients *phase-shift* their query sequences (client ``c`` starts at
shape ``c``) so concurrent requests are mostly distinct: coalescing
stays on, exactly as deployed, but the in-flight mix holds ~5
distinct statements -- real work to spread across processes.
Records BENCH_parallel.json, whose ``parallel_speedup`` field the
trend gate (benchmarks/trend.py) tracks run over run.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from conftest import emit, measure_peak, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.matching import matching_database

VOCAB = "S1(x,y), S2(y,z), S3(z,x)"
N = 300
P = 16
REQUESTS_PER_CLIENT = 40
CLIENTS = 8
WORKERS = 4
DISTINCT_QUERIES = (
    "S1(x,y), S2(y,z)",
    "S2(a,b), S1(b,c)",
    "S1(x,y), S2(y,z), S3(z,x)",
    "S3(x,y), S1(y,z)",
    "S1(x,y)",
)
MEMORY_CEILING_BYTES = 4 * 1024**3
SPEEDUP_FLOOR = 3.0
MIN_CORES_FOR_GATE = 4


def _workload(client: int) -> list[str]:
    """Client ``client``'s request sequence, phase-shifted by index.

    Every client serves each shape the same number of times (parity
    between phases is exact), but at any instant the in-flight mix
    across clients covers all five shapes instead of lock-stepping
    onto one.
    """
    return [
        DISTINCT_QUERIES[(index + client) % len(DISTINCT_QUERIES)]
        for index in range(REQUESTS_PER_CLIENT)
    ]


async def _client_loop(host: str, port: int, requests: list[str]) -> int:
    """One closed-loop client: send, await, repeat.  Returns answers."""
    reader, writer = await asyncio.open_connection(host, port)
    answered = 0
    try:
        for index, query in enumerate(requests):
            writer.write(
                (json.dumps({"id": index, "op": "query", "q": query}) + "\n")
                .encode()
            )
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"], response
            answered += response["count"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return answered


async def _timed_phase(
    host: str, port: int, clients: int
) -> tuple[float, int]:
    """(elapsed seconds, answers served) for ``clients`` closed loops."""
    start = time.perf_counter()
    answered = await asyncio.gather(
        *[
            _client_loop(host, port, _workload(client))
            for client in range(clients)
        ]
    )
    return time.perf_counter() - start, sum(answered)


async def _serve_phase(backend: str, workers: int, database) -> dict:
    """One server at ``workers`` fan-out width, run through the gauntlet."""
    from repro import connect
    from repro.serve.rpc import RpcServer

    # result_cache_size=0: every request executes for real, so wall
    # clock measures execution throughput, not cache replay (E13/E14
    # gate those).
    session = connect(
        database,
        p=P,
        backend=backend,
        result_cache_size=0,
        workers=workers,
    )
    try:
        async with RpcServer(session) as server:
            host, port = server.address
            # Warm-up: compile every plan (and, for fan-out, every
            # worker's plans) before the clock starts.
            await _timed_phase(host, port, 1)
            elapsed, answers = await _timed_phase(host, port, CLIENTS)
            fanout = session.fanout
            return {
                "elapsed": elapsed,
                "answers": answers,
                "rps": CLIENTS * REQUESTS_PER_CLIENT / elapsed,
                "dispatch_threads": server.workers,
                "fanout_queries": fanout.queries if fanout else 0,
                "fanout_usable": bool(fanout is not None and fanout.usable),
            }
    finally:
        session.close()


async def _bench(backend: str) -> dict:
    vocab = parse_query(VOCAB)
    database = matching_database(vocab, n=N, rng=0)
    single = await _serve_phase(backend, 1, database)
    multi = await _serve_phase(backend, WORKERS, database)
    return {
        "single_seconds": single["elapsed"],
        "multi_seconds": multi["elapsed"],
        "single_rps": single["rps"],
        "multi_rps": multi["rps"],
        "single_answers": single["answers"],
        "multi_answers": multi["answers"],
        "parallel_speedup": single["elapsed"] / multi["elapsed"],
        "dispatch_threads": multi["dispatch_threads"],
        "fanout_queries": multi["fanout_queries"],
        "fanout_usable": multi["fanout_usable"],
    }


def test_parallel_fanout(once, bench_backend):
    """N executor processes >= 3x one process (4+ cores); parity always."""
    if bench_backend != "numpy":
        import pytest

        pytest.skip("fan-out snapshots require the numpy backend")

    def timed():
        # Memory on a separate untimed run: tracemalloc slows the
        # per-request hot path by an order of magnitude, so the gated
        # timings come from a clean second run.
        _, memory = measure_peak(
            lambda: asyncio.run(_bench(bench_backend))
        )
        metrics = asyncio.run(_bench(bench_backend))
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return metrics, memory

    metrics, memory = once(timed)
    speedup = metrics["parallel_speedup"]
    cores = os.cpu_count() or 1
    emit(
        format_table(
            ["executors", "seconds", "aggregate req/s", "speedup"],
            [
                [1, f"{metrics['single_seconds']:.4f}",
                 f"{metrics['single_rps']:.0f}", "1.0x"],
                [WORKERS, f"{metrics['multi_seconds']:.4f}",
                 f"{metrics['multi_rps']:.0f}", f"{speedup:.1f}x"],
            ],
            title=f"E15: multi-process fan-out, {CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} requests, n={N} p={P} "
            f"({bench_backend}, {cores} cores); fan-out queries: "
            f"{metrics['fanout_queries']}",
        )
    )
    record_bench(
        "parallel",
        {
            "vocab": VOCAB,
            "backend": bench_backend,
            "n": N,
            "p": P,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "workers": WORKERS,
            "cores": cores,
            "speedup_gate_cores": MIN_CORES_FOR_GATE,
            "speedup_gated": cores >= MIN_CORES_FOR_GATE,
            **metrics,
            **memory,
        },
    )
    # Parity is unconditional: fan-out answers must match exactly.
    assert metrics["single_answers"] == metrics["multi_answers"], (
        f"fan-out served {metrics['multi_answers']} answers, "
        f"single-process served {metrics['single_answers']}"
    )
    assert metrics["fanout_usable"], "fan-out pool broke mid-benchmark"
    assert metrics["fanout_queries"] > 0, "no statements reached the pool"
    assert memory["peak_rss_bytes"] <= MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{MEMORY_CEILING_BYTES}"
    )
    # The speedup gate needs cores to fan out to; single-core CI
    # containers still pin parity above.
    if cores >= MIN_CORES_FOR_GATE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKERS}-process wall clock only {speedup:.2f}x "
            f"single-process on a {cores}-core runner"
        )
