"""E10 -- Power-law exponents, fitted (Thm 3.3's decay made precise).

Instead of eyeballing ratios, fit ``log(fraction) ~ slope * log(p)``
over the E5 sweep and compare the fitted exponent against the
theoretical ``-(tau*(1-eps)-1)``.  Also overlays the Theorem 3.3
ceiling from the knowledge-bound calculator and renders an ASCII
decay curve.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit

from repro.analysis.experiments import sweep_one_round_fraction
from repro.analysis.figures import ascii_curve, fit_power_law, slope_matches
from repro.analysis.reporting import format_table
from repro.core.covers import covering_number
from repro.core.families import line_query
from repro.core.knowledge import knowledge_bound


def run_fits():
    cases = [
        (line_query(3), Fraction(0)),     # tau*=2:   slope -1
        (line_query(3), Fraction(1, 4)),  # slope -1/2
        (line_query(5), Fraction(1, 2)),  # tau*=3:   slope -1/2
    ]
    results = []
    for query, eps in cases:
        rows = sweep_one_round_fraction(
            query, eps=eps, n=240, p_values=(4, 8, 16, 32, 64),
            trials=4, seed=7,
        )
        ps = [row["p"] for row in rows]
        measured = [row["measured_fraction"] for row in rows]
        theory_slope = -float(covering_number(query) * (1 - eps) - 1)
        fit = fit_power_law(ps, measured)
        ceiling = [
            knowledge_bound(query, p, eps, c=4.0).all_servers_fraction
            for p in ps
        ]
        results.append(
            (query.name, eps, ps, measured, fit, theory_slope, ceiling)
        )
    return results


def test_fitted_exponents_match_theory(once):
    results = once(run_fits)
    emit(
        format_table(
            ["query", "eps", "fitted slope", "theory slope", "R^2",
             "within tol"],
            [
                [
                    name,
                    eps,
                    f"{fit.slope:.3f}",
                    f"{theory:.3f}",
                    f"{fit.r_squared:.4f}",
                    slope_matches(fit, theory),
                ]
                for name, eps, _, _, fit, theory, _ in results
            ],
            title="E10: fitted decay exponents vs -(tau*(1-eps)-1)",
        )
    )
    for name, eps, ps, measured, fit, theory, ceiling in results:
        if all(value > 0 for value in measured):
            assert slope_matches(fit, theory), (name, eps, fit.slope, theory)
            assert fit.r_squared > 0.9, (name, eps, fit.r_squared)
        # Theorem 3.3's ceiling (with its own constant) is respected.
        for value, cap in zip(measured, ceiling):
            assert value <= cap

    name, eps, ps, measured, fit, theory, _ = results[0]
    emit(
        ascii_curve(
            [float(p) for p in ps],
            {"measured": measured,
             "theory": [float(p) ** theory for p in ps]},
            title=f"{name} at eps={eps}: answer fraction vs p",
        )
    )
