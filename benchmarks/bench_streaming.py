"""E13 -- streamed round execution at 10x data (ROADMAP item 2).

The monolithic engine materialises every relation's full delivery
pool in parent memory each round -- ``O(n x replication)`` bytes,
which is what capped the repository at n=1e6 (~6 GB peak on the L_8
workload).  The streamed pipeline routes in fixed-size column blocks,
accounts loads from a counting pass, and materialises delivered rows
one bounded worker shard at a time, so peak RSS is
``O(chunk + shard budget)`` independent of ``n``.

Gates pinned here:

* ``test_streaming_l8_memory`` (default CI): L_8 at p=64, n=10^6
  routes + evaluates fully streamed under a **2.5 GB** lifetime peak
  RSS ceiling -- below the ~6 GB the monolithic path needs -- with
  the exact answer count.
* ``test_streaming_l8_xl`` (``REPRO_BENCH_XL=1``): the n=10^7 leg
  completes under **4 GB** (the ROADMAP item 2 target).  ~25 GB of
  delivered tuples never exist at once.
* ``test_streaming_overlap`` (4+ cores): on a multi-round workload
  the pipelined path (shard fan-out + round r local eval overlapped
  with round r+1 routing) is >= 1.3x the non-overlapped streamed
  wall clock.  Meaningless without cores to overlap on, so the
  assertion -- like bench_parallel's -- is gated on the runner;
  parity is asserted unconditionally.

BENCH_streaming*.json records the timings, memory fields and core
count; ``overlap_speedup`` is trended by benchmarks/trend.py, which
skips the claim on runners below ``speedup_gate_cores``.
"""

from __future__ import annotations

import os
from fractions import Fraction

import pytest

from conftest import best_of, emit, measure_peak, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.covers import fractional_vertex_cover
from repro.core.families import line_query
from repro.core.plans import build_plan
from repro.core.shares import allocate_integer_shares, share_exponents
from repro.data.columnar import columnar_database
from repro.data.generators import matching_database_columnar
from repro.mpc.model import MPCConfig
from repro.mpc.routing import HashFamily
from repro.mpc.simulator import MPCSimulator

STREAM_K = 8
STREAM_P = 64
#: Streaming block size: ~4 MiB of column views per block per arity-2
#: relation -- big enough to amortise per-block dispatch, small enough
#: that transient routing state is noise next to the shard budget.
CHUNK_ROWS = 262_144
#: Default-CI leg: n=10^6 streamed end-to-end under 2.5 GB (the
#: monolithic path needs ~6 GB on this exact workload).
DEFAULT_N = 1_000_000
DEFAULT_CEILING_BYTES = int(2.5 * 1024**3)
#: XL leg: the ROADMAP item 2 gate -- n=10^7 under 4 GB.
XL_N = 10_000_000
XL_CEILING_BYTES = 4 * 1024**3
#: The pipelining gate needs cores to overlap on.
MIN_CORES_FOR_GATE = 4
OVERLAP_FLOOR = 1.3


def _stream_l8(n: int, p: int, chunk_rows: int):
    """One fully streamed HC round of L_k; returns (query, simulator).

    Identical to bench_segmented's ``_route_l8`` except the engine
    runs with ``chunk_rows`` set: deliveries are lazy recipes, loads
    come from the counting pass, and no full pool ever materialises.
    """
    from repro.engine import GridSpec, HashRoute, RoundEngine

    query = line_query(STREAM_K)
    database = matching_database_columnar(query, n=n, seed=0)
    cover = fractional_vertex_cover(query)
    allocation = allocate_integer_shares(
        share_exponents(query, cover), p
    )
    grid = GridSpec.from_shares(
        query.variables, allocation.shares, HashFamily(0)
    )
    config = MPCConfig(
        p=p, eps=Fraction(1, 2), c=4.0, backend="numpy"
    )
    simulator = MPCSimulator(
        config, input_bits=database.total_bits, enforce_capacity=False
    )
    engine = RoundEngine(simulator, chunk_rows=chunk_rows)
    steps = [
        HashRoute(relation=atom.name, atom=atom, grid=grid)
        for atom in query.atoms
    ]
    engine.run_round(steps, columnar_database(database, "numpy"))
    return query, simulator, list(range(allocation.used_servers))


def _sharded_answer_counts(query, simulator, workers, shard_bytes=None):
    """Total answers + per-server counts, one bounded shard at a time.

    Never holds more than one shard's answers: the XL leg's whole
    point is that neither the delivered pools nor the merged answer
    table exist in full at any moment.
    """
    from repro.engine.local import _eval_shard_local, _plan_eval_shards

    key_of = lambda name: name  # noqa: E731 - trivial identity
    shards = _plan_eval_shards(
        query, simulator, len(workers), key_of, shard_bytes
    )
    total = 0
    per_server: list[int] = []
    for lo, hi in shards:
        answers, counts = _eval_shard_local(
            query, simulator, lo, hi, key_of
        )
        total += len(answers)
        per_server.extend(counts)
        del answers
    return total, per_server, len(shards)


def _streamed_leg(name: str, n: int, ceiling_bytes: int, once, shard_bytes=None):
    """Route + evaluate one streamed L_8 leg and record its artifact.

    ``shard_bytes`` sizes the eval shards: evaluation pays one full
    re-routing pass per shard (the documented CPU-for-memory trade),
    so the XL leg raises the budget to keep the pass count -- not
    just the ceiling -- proportionate.
    """

    def timed():
        (query, simulator, workers), memory = measure_peak(
            lambda: _stream_l8(n, STREAM_P, CHUNK_ROWS)
        )
        for atom in query.atoms:  # streamed, not pooled
            assert simulator.has_lazy_deliveries(atom.name)
            assert not simulator.has_eager_pools(atom.name)
        eval_seconds, (total, per_server, shards) = best_of(
            1,
            lambda: _sharded_answer_counts(
                query, simulator, workers, shard_bytes
            ),
        )
        delivered = sum(
            sum(stats.received_tuples)
            for stats in simulator.report.rounds
        )
        # Lifetime peak RSS re-read after shard-wise eval ran, so the
        # ceiling covers the whole streamed pipeline.
        memory["peak_rss_bytes"] = peak_rss_bytes()
        return total, per_server, shards, delivered, eval_seconds, memory

    total, per_server, shards, delivered, eval_seconds, memory = once(
        timed
    )
    emit(
        f"E13{name}: L_{STREAM_K} n={n} p={STREAM_P} streamed "
        f"(chunk={CHUNK_ROWS}): {total} answers over {shards} eval "
        f"shard(s), {delivered} delivered tuples never pooled at "
        f"once, eval {eval_seconds:.2f}s, peak RSS "
        f"{memory['peak_rss_bytes'] / 1024**3:.2f} GiB "
        f"(ceiling {ceiling_bytes / 1024**3:.1f} GiB)"
    )
    record_bench(
        f"streaming{name.lower().replace('-', '_')}",
        {
            "query": f"L{STREAM_K}",
            "n": n,
            "p": STREAM_P,
            "chunk_rows": CHUNK_ROWS,
            "eval_shards": shards,
            "eval_seconds": eval_seconds,
            "answers": total,
            "delivered_tuples": delivered,
            "rss_ceiling_bytes": ceiling_bytes,
            **memory,
        },
    )
    # A matching database chains every domain value through all k
    # relations exactly once: the streamed pipeline must find each of
    # the n chains at exactly one grid server.
    assert total == n, f"streamed eval found {total} answers, expected {n}"
    assert memory["peak_rss_bytes"] <= ceiling_bytes, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds streamed ceiling "
        f"{ceiling_bytes}"
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_streaming_l8_memory(once):
    """Streamed L_8 n=10^6 stays under 2.5 GB with exact answers."""
    _streamed_leg("", DEFAULT_N, DEFAULT_CEILING_BYTES, once)


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_XL"),
    reason="set REPRO_BENCH_XL=1 for the n=10^7 leg",
)
def test_streaming_l8_xl(once):
    """The ROADMAP item 2 gate: n=10^7 under a 4 GB RSS ceiling."""
    # 768 MiB shards: ~3 GB peak (sources + shard pool + join
    # temporaries) and ~34 re-routing passes instead of the default
    # budget's ~50.
    _streamed_leg(
        "-XL", XL_N, XL_CEILING_BYTES, once, shard_bytes=768 * 1024**2
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_streaming_overlap(once):
    """Pipelined streaming >= 1.3x non-overlapped on 4+ cores."""
    from repro.algorithms.multiround import compile_multiround
    from repro.data.matching import matching_database
    from repro.engine import execute_plan
    from repro.engine.parallel.engine import ParallelContext
    from repro.engine.profile import RoundProfiler

    query = line_query(5)
    plan = compile_multiround(
        build_plan(query, Fraction(0)), p=16, backend="numpy"
    )
    database = matching_database(query, n=60_000, rng=7)
    chunk = 8_192
    cores = os.cpu_count() or 1

    def timed():
        serial_seconds, serial = best_of(
            3, lambda: execute_plan(plan, database, chunk_rows=chunk)
        )
        with ParallelContext(
            workers=min(4, max(2, cores)), min_rows=0
        ) as context:
            profiler = RoundProfiler()
            pipelined_seconds, pipelined = best_of(
                3,
                lambda: execute_plan(
                    plan,
                    database,
                    parallel=context,
                    chunk_rows=chunk,
                    profiler=profiler,
                ),
            )
            usable = not context.pool.broken
        memory = {"peak_rss_bytes": peak_rss_bytes()}
        return (
            serial_seconds,
            pipelined_seconds,
            serial,
            pipelined,
            profiler.overlap_seconds,
            usable,
            memory,
        )

    (
        serial_seconds,
        pipelined_seconds,
        serial,
        pipelined,
        overlap_seconds,
        usable,
        memory,
    ) = once(timed)
    speedup = serial_seconds / pipelined_seconds
    emit(
        format_table(
            ["streamed path", "seconds", "speedup"],
            [
                ["non-overlapped", f"{serial_seconds:.4f}", "1.0x"],
                ["pipelined", f"{pipelined_seconds:.4f}", f"{speedup:.2f}x"],
            ],
            title=f"E13-overlap: L_5 multiround n=60000 p=16 "
            f"chunk={chunk} ({cores} cores, "
            f"overlap {overlap_seconds:.3f}s)",
        )
    )
    record_bench(
        "streaming_overlap",
        {
            "query": "L5",
            "n": 60_000,
            "p": 16,
            "chunk_rows": chunk,
            "serial_seconds": serial_seconds,
            "pipelined_seconds": pipelined_seconds,
            "overlap_speedup": speedup,
            "overlap_seconds": overlap_seconds,
            "cores": cores,
            "speedup_gate_cores": MIN_CORES_FOR_GATE,
            "speedup_gated": cores >= MIN_CORES_FOR_GATE,
            "pool_usable": usable,
            **memory,
        },
    )
    # Parity is unconditional, cores or not.
    assert pipelined.answers == serial.answers
    assert pipelined.per_server == serial.per_server
    # The speedup claim needs cores to overlap on; single-core CI
    # containers still pin parity above.
    if cores >= MIN_CORES_FOR_GATE and usable:
        assert speedup >= OVERLAP_FLOOR, (
            f"pipelined streaming only {speedup:.2f}x non-overlapped "
            f"on a {cores}-core runner"
        )
