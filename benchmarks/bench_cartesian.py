"""E9 -- The cartesian-product tradeoff (introduction's example).

Paper claim (introduction): computing all pairs of two n-item sets
with a ``g x g`` reducer grid costs replication rate ``g`` and reducer
input ``2n/g``; with ``p`` servers the balanced choice is
``g = sqrt(p)``.  The sweep measures both sides of the tradeoff and
their invariant product.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import sweep_cartesian_tradeoff
from repro.analysis.reporting import format_table


def test_cartesian_tradeoff(once):
    n, p = 512, 64
    rows = once(
        sweep_cartesian_tradeoff,
        n=n,
        p=p,
        group_values=(1, 2, 4, 8),
        seed=0,
    )
    emit(
        format_table(
            ["g", "replication", "max reducer tuples", "theory 2n/g",
             "total tuples moved"],
            [
                [
                    row["g"],
                    row["replication_rate"],
                    row["max_reducer_tuples"],
                    row["theory_reducer"],
                    row["total_tuples_moved"],
                ]
                for row in rows
            ],
            title=f"E9: cartesian {n}x{n} on p={p} "
            "(replication g vs reducer 2n/g)",
        )
    )
    for row in rows:
        # Exact tradeoff identities from the introduction.
        assert row["replication_rate"] == row["g"]
        assert row["max_reducer_tuples"] == 2 * n // row["g"]
    # Replication increases while reducer size decreases: a tradeoff.
    replications = [row["replication_rate"] for row in rows]
    reducers = [row["max_reducer_tuples"] for row in rows]
    assert replications == sorted(replications)
    assert reducers == sorted(reducers, reverse=True)
