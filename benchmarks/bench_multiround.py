"""E6 -- Multi-round plans for L_k (Section 4.1, Example 4.2, Lem 4.6).

Paper claim: ``L_k`` is computed in exactly ``ceil(log_{k_eps} k)``
rounds by the plan of Proposition 4.1, matching the tuple-based lower
bound of Lemma 4.6.  Each plan is *executed* on the simulator and
verified against the exact join; measured rounds must equal theory.

``test_multiround_backend_speedup`` additionally pins the engineering
claim of the shared round engine: executing the same plan with
columnar view materialisation and vectorized re-routing (``numpy``)
beats the tuple-at-a-time reference by >= 3x at n=4000, while
producing bit-identical answers, view sizes and per-round loads.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from conftest import best_of, emit, measure_peak, record_bench

from repro.algorithms.multiround import run_plan
from repro.analysis.experiments import sweep_multiround_rounds
from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.families import line_query
from repro.core.plans import build_plan
from repro.data.matching import matching_database

# Largest n of the speedup benchmark; vectorization wins grow with n.
SPEEDUP_N = 4000
SPEEDUP_P = 16
SPEEDUP_K = 8

# The large-n leg: columnar inputs + numpy plan execution at n=10^5.
LARGE_N = 100_000
LARGE_P = 16
LARGE_N_MEMORY_CEILING_BYTES = 2 * 1024**3


def test_multiround_rounds(once):
    rows = once(
        sweep_multiround_rounds,
        k_values=(4, 8, 16),
        eps_values=(Fraction(0), Fraction(1, 2), Fraction(2, 3)),
        n=60,
        p=8,
        seed=0,
    )
    emit(
        format_table(
            ["query", "eps", "k_eps", "rounds measured",
             "paper ceil(log_keps k)", "lower bnd", "upper bnd"],
            [
                [
                    row["query"],
                    row["eps"],
                    row["k_eps"],
                    row["rounds_measured"],
                    row["paper_rounds"],
                    row["lower_bound"],
                    row["upper_bound"],
                ]
                for row in rows
            ],
            title="E6: rounds to compute L_k vs eps "
            "(executed plans; answers verified)",
        )
    )
    for row in rows:
        assert row["rounds_measured"] == row["paper_rounds"], row
        assert row["lower_bound"] <= row["rounds_measured"] <= row["upper_bound"]


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_multiround_backend_speedup(once):
    """Columnar plan execution is >= 3x faster than pure at n=4000."""
    query = line_query(SPEEDUP_K)
    plan = build_plan(query, Fraction(1, 2))
    database = matching_database(query, n=SPEEDUP_N, rng=0)

    def timed():
        pure_seconds, pure = best_of(
            3,
            lambda: run_plan(
                plan, database, p=SPEEDUP_P, seed=0, backend="pure"
            ),
        )
        numpy_seconds, vectorized = best_of(
            3,
            lambda: run_plan(
                plan, database, p=SPEEDUP_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run: tracemalloc slows the
        # traced call, so it must never wrap the timed ones.
        _, memory = measure_peak(
            lambda: run_plan(
                plan, database, p=SPEEDUP_P, seed=0, backend="numpy"
            )
        )
        return pure_seconds, numpy_seconds, pure, vectorized, memory

    pure_seconds, numpy_seconds, pure, vectorized, memory = once(timed)
    speedup = pure_seconds / numpy_seconds
    emit(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["pure", f"{pure_seconds:.4f}", "1.0x"],
                ["numpy", f"{numpy_seconds:.4f}", f"{speedup:.1f}x"],
            ],
            title=f"E6b: plan execution L_{SPEEDUP_K} eps=1/2 "
            f"n={SPEEDUP_N} p={SPEEDUP_P}: pure vs numpy engine",
        )
    )
    record_bench(
        "multiround_speedup",
        {
            "query": query.name,
            "eps": "1/2",
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "rounds": pure.rounds_used,
            "pure_seconds": pure_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": speedup,
            "answers": len(pure.answers),
            **memory,
        },
    )
    # Identical protocol: answers, view sizes and per-round loads.
    assert pure.answers == vectorized.answers
    assert pure.view_sizes == vectorized.view_sizes
    for round_pure, round_vec in zip(
        pure.report.rounds, vectorized.report.rounds
    ):
        assert round_pure.received_bits == round_vec.received_bits
    assert speedup >= 3.0, f"numpy engine only {speedup:.1f}x faster"


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_multiround_large_n_memory(once):
    """The n=10^5 leg: columnar plan execution within its ceiling."""
    from repro.data.generators import matching_database_columnar

    query = line_query(SPEEDUP_K)
    plan = build_plan(query, Fraction(1, 2))

    def timed():
        database = matching_database_columnar(query, n=LARGE_N, seed=0)
        seconds, result = best_of(
            1,
            lambda: run_plan(
                plan, database, p=LARGE_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run under tracemalloc.
        _, memory = measure_peak(
            lambda: run_plan(
                plan, database, p=LARGE_P, seed=0, backend="numpy"
            )
        )
        return seconds, result, memory

    seconds, result, memory = once(timed)
    emit(
        f"E6-large: plan L_{SPEEDUP_K} eps=1/2 n={LARGE_N} "
        f"p={LARGE_P} numpy {seconds:.2f}s, {result.rounds_used} "
        f"rounds, {len(result.answers)} answers, peak RSS "
        f"{memory['peak_rss_bytes'] / 1024**2:.0f} MiB"
    )
    record_bench(
        "multiround_large_n",
        {
            "query": query.name,
            "eps": "1/2",
            "n": LARGE_N,
            "p": LARGE_P,
            "rounds": result.rounds_used,
            "numpy_seconds": seconds,
            "answers": len(result.answers),
            **memory,
        },
    )
    # Every matching-database L_k chain joins end to end: n answers.
    assert len(result.answers) == LARGE_N
    assert memory["peak_rss_bytes"] <= LARGE_N_MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{LARGE_N_MEMORY_CEILING_BYTES}"
    )
