"""E6 -- Multi-round plans for L_k (Section 4.1, Example 4.2, Lem 4.6).

Paper claim: ``L_k`` is computed in exactly ``ceil(log_{k_eps} k)``
rounds by the plan of Proposition 4.1, matching the tuple-based lower
bound of Lemma 4.6.  Each plan is *executed* on the simulator and
verified against the exact join; measured rounds must equal theory.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit

from repro.analysis.experiments import sweep_multiround_rounds
from repro.analysis.reporting import format_table


def test_multiround_rounds(once):
    rows = once(
        sweep_multiround_rounds,
        k_values=(4, 8, 16),
        eps_values=(Fraction(0), Fraction(1, 2), Fraction(2, 3)),
        n=60,
        p=8,
        seed=0,
    )
    emit(
        format_table(
            ["query", "eps", "k_eps", "rounds measured",
             "paper ceil(log_keps k)", "lower bnd", "upper bnd"],
            [
                [
                    row["query"],
                    row["eps"],
                    row["k_eps"],
                    row["rounds_measured"],
                    row["paper_rounds"],
                    row["lower_bound"],
                    row["upper_bound"],
                ]
                for row in rows
            ],
            title="E6: rounds to compute L_k vs eps "
            "(executed plans; answers verified)",
        )
    )
    for row in rows:
        assert row["rounds_measured"] == row["paper_rounds"], row
        assert row["lower_bound"] <= row["rounds_measured"] <= row["upper_bound"]
