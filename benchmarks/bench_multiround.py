"""E6 -- Multi-round plans for L_k (Section 4.1, Example 4.2, Lem 4.6).

Paper claim: ``L_k`` is computed in exactly ``ceil(log_{k_eps} k)``
rounds by the plan of Proposition 4.1, matching the tuple-based lower
bound of Lemma 4.6.  Each plan is *executed* on the simulator and
verified against the exact join; measured rounds must equal theory.

``test_multiround_backend_speedup`` additionally pins the engineering
claim of the shared round engine: executing the same plan with
columnar view materialisation and vectorized re-routing (``numpy``)
beats the tuple-at-a-time reference by >= 3x at n=4000, while
producing bit-identical answers, view sizes and per-round loads.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from conftest import best_of, emit, record_bench

from repro.algorithms.multiround import run_plan
from repro.analysis.experiments import sweep_multiround_rounds
from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.families import line_query
from repro.core.plans import build_plan
from repro.data.matching import matching_database

# Largest n of the speedup benchmark; vectorization wins grow with n.
SPEEDUP_N = 4000
SPEEDUP_P = 16
SPEEDUP_K = 8


def test_multiround_rounds(once):
    rows = once(
        sweep_multiround_rounds,
        k_values=(4, 8, 16),
        eps_values=(Fraction(0), Fraction(1, 2), Fraction(2, 3)),
        n=60,
        p=8,
        seed=0,
    )
    emit(
        format_table(
            ["query", "eps", "k_eps", "rounds measured",
             "paper ceil(log_keps k)", "lower bnd", "upper bnd"],
            [
                [
                    row["query"],
                    row["eps"],
                    row["k_eps"],
                    row["rounds_measured"],
                    row["paper_rounds"],
                    row["lower_bound"],
                    row["upper_bound"],
                ]
                for row in rows
            ],
            title="E6: rounds to compute L_k vs eps "
            "(executed plans; answers verified)",
        )
    )
    for row in rows:
        assert row["rounds_measured"] == row["paper_rounds"], row
        assert row["lower_bound"] <= row["rounds_measured"] <= row["upper_bound"]


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_multiround_backend_speedup(once):
    """Columnar plan execution is >= 3x faster than pure at n=4000."""
    query = line_query(SPEEDUP_K)
    plan = build_plan(query, Fraction(1, 2))
    database = matching_database(query, n=SPEEDUP_N, rng=0)

    def timed():
        pure_seconds, pure = best_of(
            3,
            lambda: run_plan(
                plan, database, p=SPEEDUP_P, seed=0, backend="pure"
            ),
        )
        numpy_seconds, vectorized = best_of(
            3,
            lambda: run_plan(
                plan, database, p=SPEEDUP_P, seed=0, backend="numpy"
            ),
        )
        return pure_seconds, numpy_seconds, pure, vectorized

    pure_seconds, numpy_seconds, pure, vectorized = once(timed)
    speedup = pure_seconds / numpy_seconds
    emit(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["pure", f"{pure_seconds:.4f}", "1.0x"],
                ["numpy", f"{numpy_seconds:.4f}", f"{speedup:.1f}x"],
            ],
            title=f"E6b: plan execution L_{SPEEDUP_K} eps=1/2 "
            f"n={SPEEDUP_N} p={SPEEDUP_P}: pure vs numpy engine",
        )
    )
    record_bench(
        "multiround_speedup",
        {
            "query": query.name,
            "eps": "1/2",
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "rounds": pure.rounds_used,
            "pure_seconds": pure_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": speedup,
            "answers": len(pure.answers),
        },
    )
    # Identical protocol: answers, view sizes and per-round loads.
    assert pure.answers == vectorized.answers
    assert pure.view_sizes == vectorized.view_sizes
    for round_pure, round_vec in zip(
        pure.report.rounds, vectorized.report.rounds
    ):
        assert round_pure.received_bits == round_vec.received_bits
    assert speedup >= 3.0, f"numpy engine only {speedup:.1f}x faster"
