"""E15 -- overload shedding: bounded admitted latency under 4x load.

The hardening claim (ISSUE 8): with admission control on, an
open-loop arrival stream at ~4x the server's service rate does not
collapse the latency of the requests the server *admits* -- excess
load is shed fast with a structured ``ServerOverloaded`` error
instead of queueing without bound.

``test_overload_shedding`` pins the gate:

* an unloaded closed-loop pass measures the baseline per-request
  latency distribution (result cache disabled, so every request is a
  real execution);
* an open-loop pass fires one independent connection per request at
  4x the unloaded service rate against a server restarted with
  ``max_inflight=1, max_queue=1``;
* p99 latency of the *admitted* requests must stay within 2x the
  unloaded p99 (plus a 75 ms scheduling-noise floor -- the phases
  run on a shared event loop under open-loop task churn), a
  meaningful fraction of the stream must be shed, and every shed
  response must carry ``error_type == "ServerOverloaded"``.

Records BENCH_overload.json; ``overload_headroom_speedup`` (gate
ceiling over admitted p99 -- higher is better) is the field
benchmarks/trend.py trends run over run.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import emit, peak_rss_bytes, record_bench

from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.matching import matching_database

VOCAB = "S1(x,y), S2(y,z), S3(z,x)"
# n large enough that per-request execution time (tens of ms) dwarfs
# event-loop scheduling jitter: the latency gate then measures
# queueing, not asyncio noise.
N = 800
P = 16
UNLOADED_REQUESTS = 30
OVERLOAD_REQUESTS = 80
OVERLOAD_FACTOR = 4.0
# Distinct shapes so consecutive open-loop arrivals rarely coalesce
# into one in-flight execution (coalescing is bench_rpc's subject).
DISTINCT_QUERIES = (
    "S1(x,y), S2(y,z)",
    "S2(a,b), S1(b,c)",
    "S1(x,y), S2(y,z), S3(z,x)",
    "S3(x,y), S1(y,z)",
    "S1(x,y)",
)
# Gate: admitted p99 within 2x unloaded p99, plus an absolute noise
# floor for event-loop scheduling jitter under task churn.
LATENCY_RATIO_CEILING = 2.0
NOISE_FLOOR_SECONDS = 0.075
MEMORY_CEILING_BYTES = 2 * 1024**3


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _workload(requests: int) -> list[str]:
    return [
        DISTINCT_QUERIES[i % len(DISTINCT_QUERIES)] for i in range(requests)
    ]


async def _request(host: str, port: int, query: str) -> dict:
    """One request on its own connection: the open-loop client unit.

    Returns ``{"latency": seconds}`` on success or
    ``{"shed": error_type}`` on a structured error response.
    """
    start = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (json.dumps({"id": 0, "op": "query", "q": query}) + "\n")
            .encode()
        )
        await writer.drain()
        response = json.loads(await reader.readline())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    if response["ok"]:
        return {"latency": time.perf_counter() - start}
    return {"shed": response.get("error_type", "unknown")}


async def _closed_loop(host: str, port: int, requests: int) -> list[float]:
    """Serial send-await-repeat; returns per-request latencies."""
    latencies = []
    for query in _workload(requests):
        outcome = await _request(host, port, query)
        assert "latency" in outcome, outcome
        latencies.append(outcome["latency"])
    return latencies


async def _open_loop(
    host: str, port: int, requests: int, interval: float
) -> list[dict]:
    """Fire-and-forget arrivals every ``interval`` seconds."""
    tasks = []
    for query in _workload(requests):
        tasks.append(asyncio.create_task(_request(host, port, query)))
        await asyncio.sleep(interval)
    return list(await asyncio.gather(*tasks))


async def _bench(backend: str) -> dict:
    from repro import connect
    from repro.serve.rpc import RpcServer

    vocab = parse_query(VOCAB)
    database = matching_database(vocab, n=N, rng=0)
    # result_cache_size=0: every request is a real execution, so the
    # open-loop phase genuinely saturates the executor.
    session = connect(database, p=P, backend=backend, result_cache_size=0)
    try:
        # Phase 1 (no admission limits): warm the plan cache, then
        # measure the unloaded latency distribution.
        async with RpcServer(session) as server:
            host, port = server.address
            await _closed_loop(host, port, len(DISTINCT_QUERIES))
            unloaded = await _closed_loop(host, port, UNLOADED_REQUESTS)
        unloaded_mean = sum(unloaded) / len(unloaded)
        unloaded_p99 = _p99(unloaded)

        # Phase 2: a tightly-limited server under 4x open-loop load.
        # max_inflight=1/max_queue=1 bounds what an admitted request
        # can wait behind: one execution in flight plus its own.
        async with RpcServer(
            session, max_inflight=1, max_queue=1
        ) as server:
            host, port = server.address
            outcomes = await _open_loop(
                host,
                port,
                OVERLOAD_REQUESTS,
                unloaded_mean / OVERLOAD_FACTOR,
            )
            shed_overload = server.stats.shed_overload
    finally:
        session.close()

    admitted = [o["latency"] for o in outcomes if "latency" in o]
    shed = [o["shed"] for o in outcomes if "shed" in o]
    assert admitted, "overload run admitted nothing"
    admitted_p99 = _p99(admitted)
    ceiling = max(
        LATENCY_RATIO_CEILING * unloaded_p99,
        unloaded_p99 + NOISE_FLOOR_SECONDS,
    )
    return {
        "unloaded_mean_ms": unloaded_mean * 1e3,
        "unloaded_p99_ms": unloaded_p99 * 1e3,
        "admitted_p99_ms": admitted_p99 * 1e3,
        "latency_ratio": admitted_p99 / unloaded_p99,
        # trend.py trends *speedup* fields (higher = better): headroom
        # of the admitted p99 under the gate ceiling.
        "overload_headroom_speedup": ceiling / admitted_p99,
        "ceiling_ms": ceiling * 1e3,
        "admitted": len(admitted),
        "shed": len(shed),
        "shed_types": sorted(set(shed)),
        "server_shed_overload": shed_overload,
        "arrival_rps": OVERLOAD_FACTOR / unloaded_mean,
    }


def test_overload_shedding(once, bench_backend):
    """p99 of admitted requests bounded while excess load is shed."""

    def timed():
        metrics = asyncio.run(_bench(bench_backend))
        return metrics, {"peak_rss_bytes": peak_rss_bytes()}

    metrics, memory = once(timed)
    emit(
        format_table(
            ["phase", "requests", "p99 ms"],
            [
                ["unloaded", UNLOADED_REQUESTS,
                 f"{metrics['unloaded_p99_ms']:.1f}"],
                [f"{OVERLOAD_FACTOR:.0f}x open loop",
                 f"{metrics['admitted']} adm / {metrics['shed']} shed",
                 f"{metrics['admitted_p99_ms']:.1f}"],
            ],
            title=f"E15: overload shedding, n={N} p={P} "
            f"({bench_backend}); admitted p99 "
            f"{metrics['latency_ratio']:.2f}x unloaded "
            f"(ceiling {metrics['ceiling_ms']:.0f} ms)",
        )
    )
    record_bench(
        "overload",
        {
            "vocab": VOCAB,
            "backend": bench_backend,
            "n": N,
            "p": P,
            "overload_factor": OVERLOAD_FACTOR,
            "overload_requests": OVERLOAD_REQUESTS,
            **metrics,
            **memory,
        },
    )
    assert metrics["admitted_p99_ms"] <= metrics["ceiling_ms"], (
        f"admitted p99 {metrics['admitted_p99_ms']:.1f} ms exceeds "
        f"ceiling {metrics['ceiling_ms']:.1f} ms "
        f"(unloaded p99 {metrics['unloaded_p99_ms']:.1f} ms)"
    )
    assert metrics["shed"] >= OVERLOAD_REQUESTS // 10, (
        f"4x overload shed only {metrics['shed']} of "
        f"{OVERLOAD_REQUESTS} requests"
    )
    assert metrics["shed_types"] == ["ServerOverloaded"], (
        f"shed responses carried {metrics['shed_types']}"
    )
    assert metrics["server_shed_overload"] == metrics["shed"]
    assert memory["peak_rss_bytes"] <= MEMORY_CEILING_BYTES
