"""E8 -- JOIN-WITNESS (Proposition 3.12).

Paper claim: for ``q = R(w), S1(w,x), S2(x,y), S3(y,z), T(z)`` with
``E[|q|] = 1``, no one-round MPC(eps) algorithm with eps < 1/2 finds a
witness except with polynomially small probability.  We measure the
chain-recovery fraction (the engine of the proof) and the conditional
hit rate across p.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit

from repro.analysis.experiments import sweep_witness
from repro.analysis.reporting import format_table


def test_witness_decay(once):
    rows = once(
        sweep_witness,
        n=144,
        p_values=(2, 4, 8, 16),
        eps=Fraction(0),
        trials=16,
        seed=0,
    )
    emit(
        format_table(
            ["p", "instances w/ witness", "found", "hit rate",
             "mean chain fraction", "theory p^-(2(1-eps)-1)"],
            [
                [
                    row["p"],
                    row["instances_with_witness"],
                    row["witness_found"],
                    row["hit_rate"],
                    row["mean_chain_fraction"],
                    row["theory_chain_fraction"],
                ]
                for row in rows
            ],
            title="E8: JOIN-WITNESS at eps=0 < 1/2 (Prop 3.12)",
        )
    )
    fractions = [row["mean_chain_fraction"] for row in rows]
    # Shape: chain recovery decays monotonically with p and tracks
    # the theoretical 1/p rate within a constant factor.
    assert fractions == sorted(fractions, reverse=True)
    for row in rows:
        assert row["mean_chain_fraction"] <= 4 * row["theory_chain_fraction"]
