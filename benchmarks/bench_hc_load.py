"""E4 -- HyperCube load scaling (Proposition 3.2) and engine speed.

Paper claim: on matching databases HC's maximum per-server load is
``O(n / p^{1-eps(q)})`` tuples, i.e. optimal.  We sweep ``p`` for
``C_3`` (eps = 1/3), ``L_3`` (eps = 1/2) and ``T_2`` (eps = 0) and
check that measured-load / theory stays flat as ``p`` grows -- the
shape that certifies the exponent is right.

The sweep honours ``--backend {pure,numpy,auto}`` (loads are
backend-independent; the flag only changes the execution engine), and
``test_hc_backend_speedup`` pins the engineering claim: the vectorized
numpy engine beats the pure-Python reference by >= 5x on the triangle
query at the largest configured ``n``.
"""

from __future__ import annotations

import pytest

from conftest import best_of, emit, record_bench

from repro.algorithms.hypercube import run_hypercube
from repro.analysis.experiments import sweep_hc_load
from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.families import cycle_query, line_query, star_query
from repro.data.matching import matching_database

# Largest n of the speedup benchmark; vectorization wins grow with n.
SPEEDUP_N = 4000
SPEEDUP_P = 64


def run_sweeps(backend):
    results = {}
    for query in (cycle_query(3), line_query(3), star_query(2)):
        results[query.name] = sweep_hc_load(
            query, n=300, p_values=(4, 8, 16, 32, 64), trials=2, seed=0,
            backend=backend,
        )
    return results


def test_hc_load_scaling(once, bench_backend):
    results = once(run_sweeps, bench_backend)
    for name, rows in results.items():
        emit(
            format_table(
                ["p", "eps", "max load (tuples)", "theory l*n/p^(1-eps)",
                 "ratio"],
                [
                    [
                        row["p"],
                        row["eps"],
                        row["max_load_tuples"],
                        row["theory_load"],
                        row["ratio"],
                    ]
                    for row in rows
                ],
                title=f"E4: HC max load vs p for {name} (Prop 3.2, "
                f"backend={bench_backend})",
            )
        )
        ratios = [row["ratio"] for row in rows]
        # Shape: ratio flat within a small constant band across p.
        assert max(ratios) <= 3.0, (name, ratios)
        assert max(ratios) / max(min(ratios), 0.01) <= 4.0, (name, ratios)
        # Load strictly decreases as p grows.
        loads = [row["max_load_tuples"] for row in rows]
        assert loads[0] > loads[-1]


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_hc_backend_speedup(once):
    """The columnar numpy engine is >= 5x faster than pure at n=4000."""
    query = cycle_query(3)
    database = matching_database(query, n=SPEEDUP_N, rng=0)

    def timed():
        pure_seconds, pure = best_of(
            3,
            lambda: run_hypercube(
                query, database, p=SPEEDUP_P, seed=0, backend="pure"
            ),
        )
        numpy_seconds, vectorized = best_of(
            3,
            lambda: run_hypercube(
                query, database, p=SPEEDUP_P, seed=0, backend="numpy"
            ),
        )
        return pure_seconds, numpy_seconds, pure, vectorized

    pure_seconds, numpy_seconds, pure, vectorized = once(timed)
    speedup = pure_seconds / numpy_seconds
    emit(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["pure", f"{pure_seconds:.4f}", "1.0x"],
                ["numpy", f"{numpy_seconds:.4f}", f"{speedup:.1f}x"],
            ],
            title=f"HC triangle n={SPEEDUP_N} p={SPEEDUP_P}: "
            "pure vs numpy engine",
        )
    )
    record_bench(
        "hc_speedup",
        {
            "query": query.name,
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "pure_seconds": pure_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": speedup,
            "answers": len(pure.answers),
        },
    )
    # The engines implement the identical protocol.
    assert pure.answers == vectorized.answers
    assert (
        pure.report.rounds[0].received_bits
        == vectorized.report.rounds[0].received_bits
    )
    assert speedup >= 5.0, f"numpy engine only {speedup:.1f}x faster"
