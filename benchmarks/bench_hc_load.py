"""E4 -- HyperCube load scaling (Proposition 3.2).

Paper claim: on matching databases HC's maximum per-server load is
``O(n / p^{1-eps(q)})`` tuples, i.e. optimal.  We sweep ``p`` for
``C_3`` (eps = 1/3), ``L_3`` (eps = 1/2) and ``T_2`` (eps = 0) and
check that measured-load / theory stays flat as ``p`` grows -- the
shape that certifies the exponent is right.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.experiments import sweep_hc_load
from repro.analysis.reporting import format_table
from repro.core.families import cycle_query, line_query, star_query


def run_sweeps():
    results = {}
    for query in (cycle_query(3), line_query(3), star_query(2)):
        results[query.name] = sweep_hc_load(
            query, n=300, p_values=(4, 8, 16, 32, 64), trials=2, seed=0
        )
    return results


def test_hc_load_scaling(once):
    results = once(run_sweeps)
    for name, rows in results.items():
        emit(
            format_table(
                ["p", "eps", "max load (tuples)", "theory l*n/p^(1-eps)",
                 "ratio"],
                [
                    [
                        row["p"],
                        row["eps"],
                        row["max_load_tuples"],
                        row["theory_load"],
                        row["ratio"],
                    ]
                    for row in rows
                ],
                title=f"E4: HC max load vs p for {name} (Prop 3.2)",
            )
        )
        ratios = [row["ratio"] for row in rows]
        # Shape: ratio flat within a small constant band across p.
        assert max(ratios) <= 3.0, (name, ratios)
        assert max(ratios) / max(min(ratios), 0.01) <= 4.0, (name, ratios)
        # Load strictly decreases as p grows.
        loads = [row["max_load_tuples"] for row in rows]
        assert loads[0] > loads[-1]
