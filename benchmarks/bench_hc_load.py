"""E4 -- HyperCube load scaling (Proposition 3.2) and engine speed.

Paper claim: on matching databases HC's maximum per-server load is
``O(n / p^{1-eps(q)})`` tuples, i.e. optimal.  We sweep ``p`` for
``C_3`` (eps = 1/3), ``L_3`` (eps = 1/2) and ``T_2`` (eps = 0) and
check that measured-load / theory stays flat as ``p`` grows -- the
shape that certifies the exponent is right.

The sweep honours ``--backend {pure,numpy,auto}`` (loads are
backend-independent; the flag only changes the execution engine), and
``test_hc_backend_speedup`` pins the engineering claim: the vectorized
numpy engine beats the pure-Python reference by >= 5x on the triangle
query at the largest configured ``n``.
"""

from __future__ import annotations

import pytest

from conftest import best_of, emit, measure_peak, record_bench

from repro.algorithms.hypercube import run_hypercube
from repro.analysis.experiments import sweep_hc_load
from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.families import cycle_query, line_query, star_query
from repro.data.matching import matching_database

# Largest n of the speedup benchmark; vectorization wins grow with n.
SPEEDUP_N = 4000
SPEEDUP_P = 64

# The large-n leg: columnar generation + numpy HC at n=10^5, with a
# peak-RSS ceiling (lifetime peak; triangle pools ~1.2M tuples).
LARGE_N = 100_000
LARGE_P = 64
LARGE_N_MEMORY_CEILING_BYTES = 2 * 1024**3


def run_sweeps(backend):
    results = {}
    for query in (cycle_query(3), line_query(3), star_query(2)):
        results[query.name] = sweep_hc_load(
            query, n=300, p_values=(4, 8, 16, 32, 64), trials=2, seed=0,
            backend=backend,
        )
    return results


def test_hc_load_scaling(once, bench_backend):
    results = once(run_sweeps, bench_backend)
    for name, rows in results.items():
        emit(
            format_table(
                ["p", "eps", "max load (tuples)", "theory l*n/p^(1-eps)",
                 "ratio"],
                [
                    [
                        row["p"],
                        row["eps"],
                        row["max_load_tuples"],
                        row["theory_load"],
                        row["ratio"],
                    ]
                    for row in rows
                ],
                title=f"E4: HC max load vs p for {name} (Prop 3.2, "
                f"backend={bench_backend})",
            )
        )
        ratios = [row["ratio"] for row in rows]
        # Shape: ratio flat within a small constant band across p.
        assert max(ratios) <= 3.0, (name, ratios)
        assert max(ratios) / max(min(ratios), 0.01) <= 4.0, (name, ratios)
        # Load strictly decreases as p grows.
        loads = [row["max_load_tuples"] for row in rows]
        assert loads[0] > loads[-1]


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_hc_backend_speedup(once):
    """The columnar numpy engine is >= 5x faster than pure at n=4000."""
    query = cycle_query(3)
    database = matching_database(query, n=SPEEDUP_N, rng=0)

    def timed():
        pure_seconds, pure = best_of(
            3,
            lambda: run_hypercube(
                query, database, p=SPEEDUP_P, seed=0, backend="pure"
            ),
        )
        numpy_seconds, vectorized = best_of(
            3,
            lambda: run_hypercube(
                query, database, p=SPEEDUP_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run: tracemalloc slows the
        # traced call, so it must never wrap the timed ones.
        _, memory = measure_peak(
            lambda: run_hypercube(
                query, database, p=SPEEDUP_P, seed=0, backend="numpy"
            )
        )
        return pure_seconds, numpy_seconds, pure, vectorized, memory

    pure_seconds, numpy_seconds, pure, vectorized, memory = once(timed)
    speedup = pure_seconds / numpy_seconds
    emit(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["pure", f"{pure_seconds:.4f}", "1.0x"],
                ["numpy", f"{numpy_seconds:.4f}", f"{speedup:.1f}x"],
            ],
            title=f"HC triangle n={SPEEDUP_N} p={SPEEDUP_P}: "
            "pure vs numpy engine",
        )
    )
    record_bench(
        "hc_speedup",
        {
            "query": query.name,
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "pure_seconds": pure_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": speedup,
            "answers": len(pure.answers),
            **memory,
        },
    )
    # The engines implement the identical protocol.
    assert pure.answers == vectorized.answers
    assert (
        pure.report.rounds[0].received_bits
        == vectorized.report.rounds[0].received_bits
    )
    assert speedup >= 5.0, f"numpy engine only {speedup:.1f}x faster"


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_hc_large_n_memory(once):
    """The n=10^5 leg: columnar generation + numpy HC within its
    memory ceiling, answers verified against the single-node join."""
    from repro.algorithms.localjoin import evaluate_query_table
    from repro.data.generators import matching_database_columnar

    query = cycle_query(3)

    def timed():
        database = matching_database_columnar(query, n=LARGE_N, seed=0)
        seconds, result = best_of(
            1,
            lambda: run_hypercube(
                query, database, p=LARGE_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run under tracemalloc.
        _, memory = measure_peak(
            lambda: run_hypercube(
                query, database, p=LARGE_P, seed=0, backend="numpy"
            )
        )
        truth = evaluate_query_table(
            query,
            {
                name: relation.columns
                for name, relation in database.relations.items()
            },
        )
        return seconds, result, truth, memory

    seconds, result, truth, memory = once(timed)
    assert result.answers == tuple(map(tuple, truth.tolist()))
    emit(
        f"E4-large: HC {query.name} n={LARGE_N} p={LARGE_P} numpy "
        f"{seconds:.2f}s, {len(result.answers)} answers, peak RSS "
        f"{memory['peak_rss_bytes'] / 1024**2:.0f} MiB"
    )
    record_bench(
        "hc_large_n",
        {
            "query": query.name,
            "n": LARGE_N,
            "p": LARGE_P,
            "numpy_seconds": seconds,
            "answers": len(result.answers),
            "max_load_tuples": result.report.max_load_tuples,
            **memory,
        },
    )
    assert memory["peak_rss_bytes"] <= LARGE_N_MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{LARGE_N_MEMORY_CEILING_BYTES}"
    )
