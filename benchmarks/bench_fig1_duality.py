"""E3 -- Figure 1: the vertex-cover / edge-packing LP pair.

Regenerates the figure's content computationally: for a suite of
queries, solve both LPs, verify strong duality exactly, and report
tightness -- plus the ablation DESIGN.md calls out: exact rational
simplex versus floating-point scipy.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
from conftest import emit
from scipy.optimize import linprog

from repro.analysis.reporting import format_table
from repro.core.covers import analyze_covers, vertex_cover_program
from repro.core.families import (
    binomial_query,
    cycle_query,
    line_query,
    spider_query,
    star_query,
)

SUITE = [
    cycle_query(3),
    cycle_query(5),
    cycle_query(8),
    line_query(3),
    line_query(8),
    star_query(4),
    binomial_query(4, 2),
    binomial_query(4, 3),
    spider_query(3),
]


def analyse_suite():
    return [(query, analyze_covers(query)) for query in SUITE]


def test_fig1_duality(benchmark):
    results = benchmark(analyse_suite)
    emit(
        format_table(
            ["query", "min cover", "max packing", "equal", "tight cover",
             "tight packing"],
            [
                [
                    query.name,
                    analysis.tau_star,
                    analysis.tau_star,
                    "yes",
                    analysis.cover_is_tight,
                    analysis.packing_is_tight,
                ]
                for query, analysis in results
            ],
            title="Figure 1: strong duality of the covering/packing LPs",
        )
    )
    for _, analysis in results:
        assert analysis.tau_star >= 1


def test_fig1_exact_vs_float_ablation(once):
    """Exact Fractions vs scipy floats: values agree to 1e-9, but only
    the exact solver returns ``3/2`` as a fraction usable in share
    exponents."""

    def run_both():
        rows = []
        for query in SUITE:
            exact = vertex_cover_program(query).solve().objective
            num_vars = len(query.variables)
            index = {v: i for i, v in enumerate(query.variables)}
            matrix = []
            for atom in query.atoms:
                row = [0.0] * num_vars
                for variable in atom.variable_set:
                    row[index[variable]] = 1.0
                matrix.append(row)
            approx = linprog(
                c=np.ones(num_vars),
                A_ub=-np.array(matrix),
                b_ub=-np.ones(len(matrix)),
                bounds=[(0, None)] * num_vars,
                method="highs",
            )
            rows.append((query.name, exact, approx.fun))
        return rows

    rows = once(run_both)
    emit(
        format_table(
            ["query", "exact tau*", "scipy tau*", "|diff|"],
            [
                [name, exact, f"{approx:.12f}", f"{abs(float(exact) - approx):.2e}"]
                for name, exact, approx in rows
            ],
            title="Ablation: exact rational simplex vs scipy HiGHS",
        )
    )
    for _, exact, approx in rows:
        assert abs(float(exact) - approx) < 1e-9
        assert isinstance(exact, Fraction)
