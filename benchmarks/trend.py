#!/usr/bin/env python3
"""Trend gate: diff current BENCH_*.json against the previous CI run.

Every benchmark that records a ``*speedup*`` field into its
BENCH_<name>.json is a perf claim; this script compares the current
artifacts against the previous run's (downloaded from the last
successful CI on the main branch) and fails when any recorded speedup
regressed by more than the tolerance (default 20%).

Usage::

    python benchmarks/trend.py --previous prev-artifacts \
        --current bench-artifacts [--tolerance 0.2]

Exit status 1 on regression, 0 otherwise.  A missing or empty
``--previous`` directory is not an error (first run, expired
artifacts): the gate reports and passes, and the current run's upload
becomes the next baseline.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def speedup_fields(payload: dict) -> dict[str, float]:
    """The perf-claim fields of one benchmark payload.

    Any numeric top-level field whose name contains ``speedup`` is a
    claim worth trending (``speedup``, ``segmented_speedup``, ...).
    Booleans are excluded even though ``bool`` is an ``int``: a flag
    like ``speedup_gated`` is metadata, and trending it would turn a
    True -> False transition into a fake 1.0x -> 0.0x regression.
    """
    return {
        key: float(value)
        for key, value in payload.items()
        if "speedup" in key
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def collect(directory: str) -> dict[str, dict[str, float]]:
    """Per BENCH file (by basename), its speedup fields."""
    results: dict[str, dict[str, float]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"trend: skipping unreadable {path}: {error}")
            continue
        fields = speedup_fields(payload)
        if fields:
            results[os.path.basename(path)] = fields
    return results


def compare(
    previous: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """``(regressions, notes)`` between two artifact snapshots.

    A regression is a speedup field present on both sides whose
    current value fell below ``previous * (1 - tolerance)``.  Fields
    or files present on only one side are notes, never failures --
    benchmarks come and go; silent disappearance still gets surfaced.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in current:
            notes.append(f"{name}: present in previous run only")
            continue
        if name not in previous:
            notes.append(f"{name}: new benchmark (no baseline)")
            continue
        for field in sorted(set(previous[name]) | set(current[name])):
            if field not in current[name]:
                notes.append(f"{name}:{field}: dropped from payload")
                continue
            if field not in previous[name]:
                notes.append(f"{name}:{field}: new field (no baseline)")
                continue
            before = previous[name][field]
            after = current[name][field]
            floor = before * (1.0 - tolerance)
            line = (
                f"{name}:{field}: {before:.2f}x -> {after:.2f}x "
                f"(floor {floor:.2f}x)"
            )
            if after < floor:
                regressions.append(line)
            else:
                notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regression of recorded speedups"
    )
    parser.add_argument(
        "--previous",
        required=True,
        help="directory with the previous run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="directory with this run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    current = collect(args.current)
    if not current:
        print(f"trend: no BENCH_*.json under {args.current}; nothing to gate")
        return 0
    if not os.path.isdir(args.previous):
        print(
            f"trend: no previous artifacts at {args.previous}; "
            "treating this run as the new baseline"
        )
        return 0
    previous = collect(args.previous)
    if not previous:
        print(
            f"trend: previous directory {args.previous} has no readable "
            "BENCH_*.json; treating this run as the new baseline"
        )
        return 0

    regressions, notes = compare(previous, current, args.tolerance)
    for note in notes:
        print(f"trend: ok  {note}")
    for regression in regressions:
        print(f"trend: REGRESSION  {regression}")
    if regressions:
        print(
            f"trend: {len(regressions)} speedup(s) regressed more than "
            f"{args.tolerance:.0%}"
        )
        return 1
    print(f"trend: all speedups within {args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
