#!/usr/bin/env python3
"""Trend gate: diff current BENCH_*.json against the previous CI run.

Every benchmark that records a ``*speedup*`` field into its
BENCH_<name>.json is a perf claim; this script compares the current
artifacts against the previous run's (downloaded from the last
successful CI on the main branch) and fails when any recorded speedup
regressed by more than the tolerance (default 20%).

Usage::

    python benchmarks/trend.py --previous prev-artifacts \
        --current bench-artifacts [--tolerance 0.2]

Exit status 1 on regression, 0 otherwise.  A missing or empty
``--previous`` directory is not an error (first run, expired
artifacts): the gate reports and passes, and the current run's upload
becomes the next baseline.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def speedup_fields(payload: dict) -> dict[str, float]:
    """The perf-claim fields of one benchmark payload.

    Any numeric top-level field whose name contains ``speedup`` is a
    claim worth trending (``speedup``, ``segmented_speedup``, ...).
    Booleans are excluded even though ``bool`` is an ``int``: a flag
    like ``speedup_gated`` is metadata, and trending it would turn a
    True -> False transition into a fake 1.0x -> 0.0x regression.
    ``speedup_gate_cores`` is likewise metadata (the core count a
    gate requires), not a measurement.
    """
    return {
        key: float(value)
        for key, value in payload.items()
        if "speedup" in key
        and key != "speedup_gate_cores"
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    }


def collect(directory: str) -> dict[str, dict]:
    """Per BENCH file (by basename), its speedup fields + core context.

    Each entry is ``{"fields": {...}, "cores": int | None,
    "gate_cores": int | None}`` -- the recorded runner core count and
    the benchmark's own gate threshold (``speedup_gate_cores``), both
    absent in artifacts from before they were recorded.
    """
    results: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"trend: skipping unreadable {path}: {error}")
            continue
        fields = speedup_fields(payload)
        if fields:
            results[os.path.basename(path)] = {
                "fields": fields,
                "cores": payload.get("cores"),
                "gate_cores": payload.get("speedup_gate_cores"),
            }
    return results


def incomparable(previous: dict, current: dict) -> str | None:
    """Why two entries' speedups cannot be trended, or None.

    Speedups measured on different core counts are different
    experiments (a 4-core baseline against a 1-core run would be a
    fake regression, and the reverse would launder a real one), and a
    speedup recorded below the benchmark's own ``speedup_gate_cores``
    threshold was never a perf claim in the first place -- e.g. a
    parallel speedup of 0.9x measured on a single-core runner.
    """
    before_cores = previous.get("cores")
    after_cores = current.get("cores")
    if (
        before_cores is not None
        and after_cores is not None
        and before_cores != after_cores
    ):
        return (
            f"cores changed ({before_cores} -> {after_cores}); "
            "speedups not comparable"
        )
    gate = current.get("gate_cores") or previous.get("gate_cores")
    for side, cores in (("previous", before_cores), ("current", after_cores)):
        if gate is not None and cores is not None and cores < gate:
            return (
                f"{side} run on {cores} core(s), below the "
                f"{gate}-core speedup gate; speedups skipped"
            )
    return None


def compare(
    previous: dict[str, dict],
    current: dict[str, dict],
    tolerance: float,
) -> tuple[list[str], list[str]]:
    """``(regressions, notes)`` between two artifact snapshots.

    A regression is a speedup field present on both sides whose
    current value fell below ``previous * (1 - tolerance)``.  Fields
    or files present on only one side are notes, never failures --
    benchmarks come and go; silent disappearance still gets surfaced.
    Entries whose runs are :func:`incomparable` (different or
    below-gate core counts) are skipped with a note.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in current:
            notes.append(f"{name}: present in previous run only")
            continue
        if name not in previous:
            notes.append(f"{name}: new benchmark (no baseline)")
            continue
        reason = incomparable(previous[name], current[name])
        if reason is not None:
            notes.append(f"{name}: {reason}")
            continue
        before_fields = previous[name]["fields"]
        after_fields = current[name]["fields"]
        for field in sorted(set(before_fields) | set(after_fields)):
            if field not in after_fields:
                notes.append(f"{name}:{field}: dropped from payload")
                continue
            if field not in before_fields:
                notes.append(f"{name}:{field}: new field (no baseline)")
                continue
            before = before_fields[field]
            after = after_fields[field]
            floor = before * (1.0 - tolerance)
            line = (
                f"{name}:{field}: {before:.2f}x -> {after:.2f}x "
                f"(floor {floor:.2f}x)"
            )
            if after < floor:
                regressions.append(line)
            else:
                notes.append(line)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >tolerance regression of recorded speedups"
    )
    parser.add_argument(
        "--previous",
        required=True,
        help="directory with the previous run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="directory with this run's BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    current = collect(args.current)
    if not current:
        print(f"trend: no BENCH_*.json under {args.current}; nothing to gate")
        return 0
    if not os.path.isdir(args.previous):
        print(
            f"trend: no previous artifacts at {args.previous}; "
            "treating this run as the new baseline"
        )
        return 0
    previous = collect(args.previous)
    if not previous:
        print(
            f"trend: previous directory {args.previous} has no readable "
            "BENCH_*.json; treating this run as the new baseline"
        )
        return 0

    regressions, notes = compare(previous, current, args.tolerance)
    for note in notes:
        print(f"trend: ok  {note}")
    for regression in regressions:
        print(f"trend: REGRESSION  {regression}")
    if regressions:
        print(
            f"trend: {len(regressions)} speedup(s) regressed more than "
            f"{args.tolerance:.0%}"
        )
        return 1
    print(f"trend: all speedups within {args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
