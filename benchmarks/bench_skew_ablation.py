"""E11 (ablation) -- skew: where the matching assumption is load-bearing.

Section 2.5 restricts the paper's upper bounds to matching databases
and defers skew to [17].  This ablation makes the boundary measurable:

* on a *funnel* instance (every S1 tuple meets every S2 tuple through
  one heavy join value) plain HC piles the entire input on one server
  -- max load Theta(n), flat in p;
* the skew-aware variant (heavy-hitter cartesian split, after [17])
  restores decreasing-in-p max load;
* on matching inputs the two algorithms route identically (the
  skew machinery costs nothing when there is no skew).
"""

from __future__ import annotations

from conftest import emit

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.skewaware import run_hypercube_skew_aware
from repro.analysis.reporting import format_table
from repro.core.query import parse_query
from repro.data.database import Database, Relation
from repro.data.matching import matching_database


def funnel_database(n):
    return Database.from_relations(
        [
            Relation.from_tuples("S1", [(i, 1) for i in range(1, n + 1)], n),
            Relation.from_tuples("S2", [(1, i) for i in range(1, n + 1)], n),
        ]
    )


def run_ablation():
    query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
    n = 256
    database = funnel_database(n)
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    rows = []
    for p in (4, 16, 64):
        plain = run_hypercube(query, database, p=p, seed=3)
        aware = run_hypercube_skew_aware(query, database, p=p, seed=3)
        assert plain.answers == truth
        assert aware.answers == truth
        rows.append(
            {
                "p": p,
                "plain_max_load": plain.report.max_load_tuples,
                "aware_max_load": aware.report.max_load_tuples,
                "plain_imbalance": round(
                    plain.report.rounds[0].load_imbalance, 2
                ),
                "aware_imbalance": round(
                    aware.report.rounds[0].load_imbalance, 2
                ),
            }
        )
    return rows


def test_skew_ablation(once):
    rows = once(run_ablation)
    emit(
        format_table(
            ["p", "plain HC max load", "skew-aware max load",
             "plain imbalance", "aware imbalance"],
            [
                [
                    row["p"],
                    row["plain_max_load"],
                    row["aware_max_load"],
                    row["plain_imbalance"],
                    row["aware_imbalance"],
                ]
                for row in rows
            ],
            title="E11: funnel skew, plain vs skew-aware HC "
            "(n = 256 tuples per relation)",
        )
    )
    # Plain HC: max load flat at ~2n regardless of p (all on one server).
    plain = [row["plain_max_load"] for row in rows]
    assert plain[0] == plain[-1] == 512
    # Skew-aware: max load strictly decreasing in p.
    aware = [row["aware_max_load"] for row in rows]
    assert aware == sorted(aware, reverse=True)
    assert aware[-1] < plain[-1] / 2
    # And far better balanced.
    for row in rows:
        assert row["aware_imbalance"] <= row["plain_imbalance"]


def test_no_cost_without_skew(once):
    """On matchings the two algorithms send byte-identical loads."""

    def compare():
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = matching_database(query, n=200, rng=9)
        plain = run_hypercube(query, database, p=16, seed=4)
        aware = run_hypercube_skew_aware(query, database, p=16, seed=4)
        return plain, aware

    plain, aware = once(compare)
    assert plain.answers == aware.answers
    assert (
        plain.report.rounds[0].received_bits
        == aware.report.rounds[0].received_bits
    )
    emit(
        "E11b: matching input -> skew-aware routing is byte-identical "
        "to plain HC (no skew, no cost)."
    )
