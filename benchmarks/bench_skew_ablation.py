"""E11 (ablation) -- skew: where the matching assumption is load-bearing.

Section 2.5 restricts the paper's upper bounds to matching databases
and defers skew to [17].  This ablation makes the boundary measurable:

* on a *funnel* instance (every S1 tuple meets every S2 tuple through
  one heavy join value) plain HC piles the entire input on one server
  -- max load Theta(n), flat in p;
* the skew-aware variant (heavy-hitter cartesian split, after [17])
  restores decreasing-in-p max load;
* on matching inputs the two algorithms route identically (the
  skew machinery costs nothing when there is no skew).

``test_skew_backend_speedup`` additionally pins the engine claim: the
vectorized heavy-hitter detection (unique/counts) plus columnar
heavy/light partition routing beat the per-tuple reference by >= 3x
at n=4000 with bit-identical answers, heavy hitters and loads.
"""

from __future__ import annotations

import pytest

from conftest import best_of, emit, measure_peak, record_bench

from repro.algorithms.hypercube import run_hypercube
from repro.algorithms.localjoin import evaluate_query
from repro.algorithms.skewaware import run_hypercube_skew_aware
from repro.analysis.reporting import format_table
from repro.backend import numpy_available
from repro.core.query import parse_query
from repro.data.database import Database, Relation
from repro.data.generators import skewed_database
from repro.data.matching import matching_database

# Largest n of the speedup benchmark; vectorization wins grow with n.
SPEEDUP_N = 4000
SPEEDUP_P = 64
SPEEDUP_HEAVY_FRACTION = 0.5

# The large-n leg: chunked columnar skew generation + numpy skew-aware
# HC at n=10^5.
LARGE_N = 100_000
LARGE_P = 64
LARGE_N_MEMORY_CEILING_BYTES = 3 * 1024**3


def funnel_database(n):
    return Database.from_relations(
        [
            Relation.from_tuples("S1", [(i, 1) for i in range(1, n + 1)], n),
            Relation.from_tuples("S2", [(1, i) for i in range(1, n + 1)], n),
        ]
    )


def run_ablation():
    query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
    n = 256
    database = funnel_database(n)
    truth = evaluate_query(
        query, {name: database[name].tuples for name in database.relations}
    )
    rows = []
    for p in (4, 16, 64):
        plain = run_hypercube(query, database, p=p, seed=3)
        aware = run_hypercube_skew_aware(query, database, p=p, seed=3)
        assert plain.answers == truth
        assert aware.answers == truth
        rows.append(
            {
                "p": p,
                "plain_max_load": plain.report.max_load_tuples,
                "aware_max_load": aware.report.max_load_tuples,
                "plain_imbalance": round(
                    plain.report.rounds[0].load_imbalance, 2
                ),
                "aware_imbalance": round(
                    aware.report.rounds[0].load_imbalance, 2
                ),
            }
        )
    return rows


def test_skew_ablation(once):
    rows = once(run_ablation)
    emit(
        format_table(
            ["p", "plain HC max load", "skew-aware max load",
             "plain imbalance", "aware imbalance"],
            [
                [
                    row["p"],
                    row["plain_max_load"],
                    row["aware_max_load"],
                    row["plain_imbalance"],
                    row["aware_imbalance"],
                ]
                for row in rows
            ],
            title="E11: funnel skew, plain vs skew-aware HC "
            "(n = 256 tuples per relation)",
        )
    )
    # Plain HC: max load flat at ~2n regardless of p (all on one server).
    plain = [row["plain_max_load"] for row in rows]
    assert plain[0] == plain[-1] == 512
    # Skew-aware: max load strictly decreasing in p.
    aware = [row["aware_max_load"] for row in rows]
    assert aware == sorted(aware, reverse=True)
    assert aware[-1] < plain[-1] / 2
    # And far better balanced.
    for row in rows:
        assert row["aware_imbalance"] <= row["plain_imbalance"]


def test_no_cost_without_skew(once):
    """On matchings the two algorithms send byte-identical loads."""

    def compare():
        query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
        database = matching_database(query, n=200, rng=9)
        plain = run_hypercube(query, database, p=16, seed=4)
        aware = run_hypercube_skew_aware(query, database, p=16, seed=4)
        return plain, aware

    plain, aware = once(compare)
    assert plain.answers == aware.answers
    assert (
        plain.report.rounds[0].received_bits
        == aware.report.rounds[0].received_bits
    )
    emit(
        "E11b: matching input -> skew-aware routing is byte-identical "
        "to plain HC (no skew, no cost)."
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_skew_backend_speedup(once):
    """Vectorized skew-aware HC is >= 3x faster than pure at n=4000."""
    query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")
    database = skewed_database(
        query,
        n=SPEEDUP_N,
        rng=1,
        heavy_fraction=SPEEDUP_HEAVY_FRACTION,
    )

    def timed():
        pure_seconds, pure = best_of(
            3,
            lambda: run_hypercube_skew_aware(
                query, database, p=SPEEDUP_P, seed=0, backend="pure"
            ),
        )
        numpy_seconds, vectorized = best_of(
            3,
            lambda: run_hypercube_skew_aware(
                query, database, p=SPEEDUP_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run: tracemalloc slows the
        # traced call, so it must never wrap the timed ones.
        _, memory = measure_peak(
            lambda: run_hypercube_skew_aware(
                query, database, p=SPEEDUP_P, seed=0, backend="numpy"
            )
        )
        return pure_seconds, numpy_seconds, pure, vectorized, memory

    pure_seconds, numpy_seconds, pure, vectorized, memory = once(timed)
    speedup = pure_seconds / numpy_seconds
    emit(
        format_table(
            ["engine", "seconds", "speedup"],
            [
                ["pure", f"{pure_seconds:.4f}", "1.0x"],
                ["numpy", f"{numpy_seconds:.4f}", f"{speedup:.1f}x"],
            ],
            title=f"E11c: skew-aware HC n={SPEEDUP_N} p={SPEEDUP_P} "
            f"heavy={SPEEDUP_HEAVY_FRACTION}: pure vs numpy engine",
        )
    )
    record_bench(
        "skew_speedup",
        {
            "query": query.name,
            "n": SPEEDUP_N,
            "p": SPEEDUP_P,
            "heavy_fraction": SPEEDUP_HEAVY_FRACTION,
            "pure_seconds": pure_seconds,
            "numpy_seconds": numpy_seconds,
            "speedup": speedup,
            "answers": len(pure.answers),
            **memory,
        },
    )
    # Identical protocol: answers, heavy hitters and loads.
    assert pure.answers == vectorized.answers
    assert pure.heavy_hitters == vectorized.heavy_hitters
    assert (
        pure.report.rounds[0].received_bits
        == vectorized.report.rounds[0].received_bits
    )
    assert speedup >= 3.0, f"numpy engine only {speedup:.1f}x faster"


@pytest.mark.skipif(not numpy_available(), reason="numpy backend unavailable")
def test_skew_large_n_memory(once):
    """The n=10^5 leg: chunked skew generation + skew-aware HC within
    its memory ceiling; heavy-hitter machinery actually engaged."""
    from repro.data.generators import skewed_database_columnar

    query = parse_query("q(x,y,z) = S1(x,y), S2(y,z)")

    def timed():
        database = skewed_database_columnar(
            query,
            n=LARGE_N,
            seed=1,
            heavy_fraction=SPEEDUP_HEAVY_FRACTION,
        )
        seconds, result = best_of(
            1,
            lambda: run_hypercube_skew_aware(
                query, database, p=LARGE_P, seed=0, backend="numpy"
            ),
        )
        # Memory on a separate (untimed) run under tracemalloc.
        _, memory = measure_peak(
            lambda: run_hypercube_skew_aware(
                query, database, p=LARGE_P, seed=0, backend="numpy"
            )
        )
        return seconds, result, memory

    seconds, result, memory = once(timed)
    heavy_values = sum(len(v) for v in result.heavy_hitters.values())
    emit(
        f"E11-large: skew-aware HC n={LARGE_N} p={LARGE_P} "
        f"heavy={SPEEDUP_HEAVY_FRACTION} numpy {seconds:.2f}s, "
        f"{len(result.answers)} answers, {heavy_values} heavy values, "
        f"peak RSS {memory['peak_rss_bytes'] / 1024**2:.0f} MiB"
    )
    record_bench(
        "skew_large_n",
        {
            "query": query.name,
            "n": LARGE_N,
            "p": LARGE_P,
            "heavy_fraction": SPEEDUP_HEAVY_FRACTION,
            "numpy_seconds": seconds,
            "answers": len(result.answers),
            "heavy_values": heavy_values,
            "max_load_tuples": result.report.max_load_tuples,
            **memory,
        },
    )
    assert heavy_values >= 1  # the funnel value was detected
    assert memory["peak_rss_bytes"] <= LARGE_N_MEMORY_CEILING_BYTES, (
        f"peak RSS {memory['peak_rss_bytes']} exceeds ceiling "
        f"{LARGE_N_MEMORY_CEILING_BYTES}"
    )
