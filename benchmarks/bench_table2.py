"""E2 -- Regenerate Table 2: the rounds/space tradeoff.

Paper rows (Table 2): space exponent, rounds at eps = 0, and the
rounds-as-a-function-of-eps curve for ``C_k, L_k, T_k, SP_k``.  Round
counts come from the actual plan builder (not the formulas), so this
also benchmarks plan construction.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import emit

from repro.analysis.reporting import format_table
from repro.analysis.tables import table2_rows, tradeoff_curve


def test_table2_regeneration(once):
    rows = once(table2_rows)
    for row in rows:
        if row.paper_rounds_at_zero is not None:
            assert row.rounds_at_zero == row.paper_rounds_at_zero
    emit(
        format_table(
            ["query", "space exp", "rounds@eps=0", "paper", "r(eps) curve"],
            [
                [
                    row.name,
                    row.space_exponent,
                    row.rounds_at_zero,
                    row.paper_rounds_at_zero,
                    " ".join(
                        f"{eps}:{depth}"
                        for eps, depth in sorted(row.rounds_by_eps.items())
                    ),
                ]
                for row in rows
            ],
            title="Table 2 (recomputed from the plan builder)",
        )
    )


def test_tradeoff_curve_l16(benchmark):
    curve = benchmark(
        tradeoff_curve,
        16,
        (Fraction(0), Fraction(1, 2), Fraction(2, 3), Fraction(3, 4)),
    )
    emit(
        format_table(
            ["eps", "rounds (measured)", "k_eps"],
            [[eps, depth, base] for eps, depth, base in curve],
            title="L16 rounds/space tradeoff: r ~ log k / log(2/(1-eps))",
        )
    )
    depths = [depth for _, depth, _ in curve]
    assert depths[0] == 4 and depths[-1] == 2
    assert depths == sorted(depths, reverse=True)
